// rpdtab.hpp - the Remote Process Descriptor Table.
//
// LaunchMON's portable view of "which task runs where": hostname, executable
// and pid per MPI task (paper §2). Fetched by the engine from the RM
// launcher's address space, shipped FE-ward over LMONP, broadcast to daemons
// during the handshake. Its linear size in job tasks is the paper's Region B
// term, so pack() produces real bytes.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "rm/types.hpp"

namespace lmon::core {

class Rpdtab {
 public:
  Rpdtab() = default;
  explicit Rpdtab(std::vector<rm::TaskDesc> entries)
      : entries_(std::move(entries)) {}

  [[nodiscard]] const std::vector<rm::TaskDesc>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Unique hosts in first-appearance (rank) order: the node set a tool
  /// needs daemons on.
  [[nodiscard]] std::vector<std::string> hosts() const;

  /// Entries co-located on `host` - what a back-end daemon should attach to.
  [[nodiscard]] std::vector<rm::TaskDesc> entries_for_host(
      const std::string& host) const;

  [[nodiscard]] Bytes pack() const;
  static std::optional<Rpdtab> unpack(const Bytes& data);

  /// The proctable blob format used in the launcher's address space is the
  /// same; these adapt to/from the APAI layer.
  static std::optional<Rpdtab> from_proctable_blob(const Bytes& blob);

  friend bool operator==(const Rpdtab& a, const Rpdtab& b) {
    return a.entries_ == b.entries_;
  }

 private:
  std::vector<rm::TaskDesc> entries_;
};

}  // namespace lmon::core
