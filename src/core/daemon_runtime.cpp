#include "core/daemon_runtime.hpp"

#include <cassert>

#include "cluster/machine.hpp"
#include "common/argparse.hpp"
#include "core/payloads.hpp"
#include "simkernel/log.hpp"

namespace lmon::core {

DaemonRuntime::DaemonRuntime(cluster::Process& self, MsgClass cls)
    : self_(self), cls_(cls) {
  assert(cls == MsgClass::FeBe || cls == MsgClass::FeMw);
}

DaemonRuntime::~DaemonRuntime() = default;

Status DaemonRuntime::init(Callbacks callbacks) {
  cbs_ = std::move(callbacks);
  sessions_[0];  // the infrastructure session always exists
  // The hostname backs the rank-from-host fallback used by launch
  // strategies that hand every daemon an identical argv (tree-rsh).
  auto params = Iccl::params_from_args(self_.args(), self_.node().hostname());
  if (!params) {
    return Status(Rc::Einval,
                  "daemon not launched by LaunchMON (missing --lmon-* argv)");
  }
  fe_host_ = params->fe_host;
  fe_port_ = params->fe_port;

  iccl_ = std::make_unique<Iccl>(self_, std::move(*params));
  iccl_->set_bcast_handler(
      [this](std::uint32_t tag, const Bytes& data) { dispatch_bcast(tag, data); });
  iccl_->set_gather_handler(
      [this](std::uint32_t tag,
             std::vector<std::pair<std::uint32_t, Bytes>> entries) {
        on_internal_gather(tag, std::move(entries));
      });
  iccl_->set_scatter_handler([this](std::uint32_t tag, const Bytes& data) {
    dispatch_scatter(tag, data);
  });

  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    const std::string& session = iccl_->params().session;
    span_ = tracer->begin_span(
        "daemon", "daemon", static_cast<int>(self_.node().id()), self_.pid(),
        tracer->anchor("spawn:" + session + ":" + self_.node().hostname()),
        "rank=" + std::to_string(iccl_->rank()) +
            (iccl_->is_root() ? " master" : ""));
    tracer->set_anchor(
        "daemon:" + session + ":" + std::to_string(iccl_->rank()), span_);
  }
  self_.machine().flight_record(
      self_.pid(), "daemon",
      "init rank=" + std::to_string(iccl_->rank()));

  // The master's handshake with the FE begins immediately (paper e7) while
  // the fabric wires underneath (e8..e9).
  if (iccl_->is_root()) {
    self_.machine().mark(mark_prefix() + "e8_setup_begin");
    connect_fe();
  }
  iccl_->start([this](Status st) { on_fabric_ready(st); });
  return Status::ok();
}

void DaemonRuntime::connect_fe() {
  if (fe_host_.empty() || fe_port_ == 0) {
    fail(Status(Rc::Einval, "no FE endpoint in bootstrap argv"));
    return;
  }
  self_.connect(
      fe_host_, fe_port_, [this](Status st, cluster::ChannelPtr ch) {
        if (!st.is_ok()) {
          fail(Status(Rc::Esubcom, "master cannot reach FE: " + st.message()));
          return;
        }
        fe_channel_ = ch;
        self_.set_channel_handler(
            ch,
            [this](const cluster::ChannelPtr& c, cluster::Message m) {
              on_fe_message(c, std::move(m));
            },
            [this](const cluster::ChannelPtr&) {
              // FE went away: tear the session down.
              if (cbs_.on_shutdown) {
                cbs_.on_shutdown();
              } else {
                self_.exit(0);
              }
            });
        payload::Hello hello;
        hello.session = iccl_->params().session;
        hello.rank = iccl_->rank();
        hello.pid = self_.pid();
        hello.host = self_.node().hostname();
        self_.send(ch, LmonpMessage::fe_daemon(cls_, FeDaemonMsg::Hello,
                                               hello.encode())
                           .encode());
      });
}

void DaemonRuntime::on_fabric_ready(Status st) {
  if (!st.is_ok()) {
    fail(st);
    return;
  }
  fabric_ready_ = true;
  self_.machine().flight_record(self_.pid(), "daemon", "fabric ready");
  if (iccl_->is_root()) {
    self_.machine().mark(mark_prefix() + "e9_setup_done");
    maybe_run_handshake();
  }
}

void DaemonRuntime::on_fe_message(const cluster::ChannelPtr& ch,
                                  cluster::Message m) {
  (void)ch;
  auto msg = LmonpMessage::decode(m);
  if (!msg || msg->msg_class != cls_) return;
  switch (static_cast<FeDaemonMsg>(msg->type)) {
    case FeDaemonMsg::HandshakeInit: {
      auto init = payload::HandshakeInit::decode(msg->lmon_payload);
      if (!init) return;
      buffered_rpdtab_ = std::move(init->rpdtab);
      buffered_usr_ = std::move(msg->usr_payload);
      handshake_buffered_ = true;
      maybe_run_handshake();
      break;
    }
    case FeDaemonMsg::UsrData:
      if (cbs_.on_usrdata) cbs_.on_usrdata(msg->usr_payload);
      break;
    case FeDaemonMsg::Detach:
      iccl_->broadcast(kTagShutdown, {});
      break;
    case FeDaemonMsg::VirtualAttach: {
      auto req = payload::VirtualAttach::decode(msg->lmon_payload);
      if (req) handle_virtual_attach(req->vsid);
      break;
    }
    case FeDaemonMsg::VirtualDetach: {
      auto req = payload::VirtualDetach::decode(msg->lmon_payload);
      if (req && sessions_.count(req->vsid) != 0) {
        ByteWriter w;
        w.u32(req->vsid);
        iccl_->broadcast(kTagVDetach, std::move(w).take());
      }
      break;
    }
    default:
      break;
  }
}

void DaemonRuntime::maybe_run_handshake() {
  if (!iccl_->is_root() || !fabric_ready_ || !handshake_buffered_ ||
      handshake_done_) {
    return;
  }
  handshake_done_ = true;
  self_.machine().mark(mark_prefix() + "t_collective_begin");
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    collective_span_ = tracer->begin_span(
        "iccl.handshake_collective", "iccl",
        static_cast<int>(self_.node().id()), self_.pid(), span_,
        "size=" + std::to_string(iccl_->size()));
  }
  self_.machine().flight_record(self_.pid(), "daemon",
                                "handshake collective begin");
  // Distribute the RPDTAB + piggybacked tool data down the fabric.
  ByteWriter w;
  w.blob(buffered_rpdtab_);
  w.blob(buffered_usr_);
  iccl_->broadcast(kTagHandshake, std::move(w).take());
}

void DaemonRuntime::on_handshake_bcast(const Bytes& data) {
  ByteReader r(data);
  auto table = r.blob();
  auto usr = r.blob();
  if (!table || !usr) {
    fail(Status(Rc::Esubcom, "malformed handshake broadcast"));
    return;
  }
  auto rpdtab = Rpdtab::unpack(*table);
  if (!rpdtab) {
    fail(Status(Rc::Esubcom, "bad RPDTAB in handshake"));
    return;
  }
  proctable_ = std::move(*rpdtab);
  usrdata_ = std::move(*usr);

  auto ack = [this](Status st) {
    ByteWriter w;
    w.boolean(st.is_ok());
    w.str(st.message());
    iccl_->contribute(kTagReadyAck, std::move(w).take());
    if (!iccl_->is_root()) {
      if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
        tracer->end_span(span_, st.is_ok() ? "ready" : "failed");
      }
      self_.machine().flight_record(self_.pid(), "daemon", "ready ack sent");
    }
    if (cbs_.on_ready && !iccl_->is_root()) cbs_.on_ready(st);
  };
  if (cbs_.on_init) {
    cbs_.on_init(proctable_, usrdata_, ack);
  } else {
    ack(Status::ok());
  }
}

void DaemonRuntime::on_internal_gather(
    std::uint32_t tag, std::vector<std::pair<std::uint32_t, Bytes>> entries) {
  if (tag == kTagReadyAck) {
    // Master: all daemons initialized (or reported failure).
    bool all_ok = entries.size() == iccl_->size();
    std::string error;
    for (const auto& [rank, data] : entries) {
      ByteReader r(data);
      auto ok_f = r.boolean();
      auto msg = r.str();
      if (!ok_f || !*ok_f) {
        all_ok = false;
        if (error.empty() && msg && !msg->empty()) error = *msg;
      }
    }
    self_.machine().mark(mark_prefix() + "t_collective_end");
    if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
      tracer->end_span(collective_span_,
                       "acks=" + std::to_string(entries.size()));
    }
    self_.machine().flight_record(
        self_.pid(), "daemon",
        "handshake collective end acks=" + std::to_string(entries.size()));

    payload::Ready ready;
    ready.ok = all_ok;
    ready.error = error;
    ready.ndaemons = static_cast<std::uint32_t>(entries.size());
    if (fe_channel_ != nullptr) {
      self_.machine().mark(mark_prefix() + "e10_ready");
      self_.send(fe_channel_,
                 LmonpMessage::fe_daemon(cls_, FeDaemonMsg::Ready,
                                         ready.encode(), ready_usr_)
                     .encode());
    }
    if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
      tracer->end_span(span_, all_ok ? "ready" : "failed: " + error);
    }
    if (cbs_.on_ready) {
      cbs_.on_ready(all_ok ? Status::ok() : Status(Rc::Esubcom, error));
    }
    return;
  }
  // User-level gather round.
  on_vs_gather(0, tag, std::move(entries));
}

void DaemonRuntime::dispatch_bcast(std::uint32_t tag, const Bytes& data) {
  if (tag == kTagHandshake) {
    on_handshake_bcast(data);
    return;
  }
  if (tag == kTagShutdown) {
    if (cbs_.on_shutdown) {
      cbs_.on_shutdown();
    } else {
      self_.exit(0);
    }
    return;
  }
  if (tag == kTagVAttach || tag == kTagVDetach) {
    ByteReader r(data);
    const std::uint32_t vsid = r.u32().value_or(0);
    if (vsid == 0) return;
    if (tag == kTagVAttach) {
      vsession_open(vsid);
    } else {
      vsession_close(vsid);
    }
    return;
  }
  if (tag >= kTagCommandBase && tag < kUserBarrier) {
    if (cbs_.on_command) cbs_.on_command(data);
    return;
  }
  dispatch_vs_bcast(0, tag, data);
}

std::vector<rm::TaskDesc> DaemonRuntime::my_entries() const {
  return proctable_.entries_for_host(self_.node().hostname());
}

Status DaemonRuntime::send_usrdata_fe(Bytes b) {
  if (!is_master()) {
    return Status(Rc::Einval, "only the master daemon talks to the FE");
  }
  if (fe_channel_ == nullptr) return Status(Rc::Esubcom, "no FE link");
  self_.send(fe_channel_, LmonpMessage::fe_daemon(cls_, FeDaemonMsg::UsrData,
                                                  {}, std::move(b))
                              .encode());
  return Status::ok();
}

Status DaemonRuntime::broadcast_command(Bytes data) {
  if (!is_master()) {
    return Status(Rc::Einval, "only the master broadcasts commands");
  }
  // One tag per round: see kTagCommandBase.
  const std::uint32_t tag =
      kTagCommandBase +
      (command_count_++ % (kUserBarrier - kTagCommandBase));
  iccl_->broadcast(tag, std::move(data));
  return Status::ok();
}

void DaemonRuntime::barrier(std::function<void()> done) {
  vbarrier(0, std::move(done));
}

void DaemonRuntime::gather(
    Bytes contribution,
    std::function<void(std::vector<std::pair<std::uint32_t, Bytes>>)>
        at_master) {
  vgather(0, std::move(contribution), std::move(at_master));
}

void DaemonRuntime::broadcast(Bytes data,
                              std::function<void(const Bytes&)> delivered) {
  vbroadcast(0, std::move(data), std::move(delivered));
}

void DaemonRuntime::scatter(std::vector<Bytes> parts,
                            std::function<void(const Bytes&)> delivered) {
  vscatter(0, std::move(parts), std::move(delivered));
}

// --- virtual sessions (persistent multiplexed service) ---------------------

std::uint32_t DaemonRuntime::max_virtual_sessions() const {
  const std::uint32_t configured = iccl_->params().max_sessions;
  return configured != 0 ? configured : kDefaultMaxVSessions;
}

std::vector<std::uint32_t> DaemonRuntime::virtual_sessions() const {
  std::vector<std::uint32_t> out;
  out.reserve(sessions_.size());
  for (const auto& [vsid, vs] : sessions_) {
    if (vsid != 0) out.push_back(vsid);
  }
  return out;
}

DaemonRuntime::VSession* DaemonRuntime::vsession(std::uint32_t vsid) {
  auto it = sessions_.find(vsid);
  return it == sessions_.end() ? nullptr : &it->second;
}

void DaemonRuntime::handle_virtual_attach(std::uint32_t vsid) {
  if (vsid == 0 || sessions_.count(vsid) != 0) {
    send_virtual_ready(vsid, false, "virtual session id in use", 0);
    return;
  }
  // Admission control: the tree accepts a bounded number of concurrent
  // virtual sessions; beyond the bound the attach is rejected cleanly and
  // the FE surfaces it as a Status, never a hang.
  if (sessions_.size() - 1 >= max_virtual_sessions()) {
    self_.machine().count("daemon.vattach_rejected");
    self_.machine().flight_record(
        self_.pid(), "daemon",
        "vattach " + std::to_string(vsid) + " rejected: session table full");
    send_virtual_ready(vsid, false, "virtual session table full", 0);
    return;
  }
  ByteWriter w;
  w.u32(vsid);
  iccl_->broadcast(kTagVAttach, std::move(w).take());
}

void DaemonRuntime::vsession_open(std::uint32_t vsid) {
  if (sessions_.count(vsid) != 0) return;
  sessions_[vsid];
  Iccl::SessionHandlers handlers;
  handlers.on_bcast = [this, vsid](std::uint32_t tag, const Bytes& data) {
    dispatch_vs_bcast(vsid, tag, data);
  };
  handlers.on_gather =
      [this, vsid](std::uint32_t tag,
                   std::vector<std::pair<std::uint32_t, Bytes>> entries) {
        on_vs_gather(vsid, tag, std::move(entries));
      };
  handlers.on_scatter = [this, vsid](std::uint32_t tag, const Bytes& data) {
    dispatch_vs_scatter(vsid, tag, data);
  };
  iccl_->bind_session(vsid, std::move(handlers));
  self_.machine().count("daemon.vsessions_opened");
  self_.machine().flight_record(self_.pid(), "daemon",
                                "vsession " + std::to_string(vsid) +
                                    " attached");
  if (cbs_.on_vsession_attach) cbs_.on_vsession_attach(vsid);
  // Attach ack rides the new session's own namespace; the master answers
  // the FE once every daemon's ack arrived.
  iccl_->contribute(StreamKey{vsid, kTagReadyAck}, {});
}

void DaemonRuntime::vsession_close(std::uint32_t vsid) {
  auto it = sessions_.find(vsid);
  if (it == sessions_.end() || vsid == 0) return;
  iccl_->unbind_session(vsid);
  sessions_.erase(it);
  self_.machine().count("daemon.vsessions_closed");
  self_.machine().flight_record(self_.pid(), "daemon",
                                "vsession " + std::to_string(vsid) +
                                    " detached");
  if (cbs_.on_vsession_detach) cbs_.on_vsession_detach(vsid);
}

void DaemonRuntime::send_virtual_ready(std::uint32_t vsid, bool ok,
                                       std::string error,
                                       std::uint32_t ndaemons) {
  if (fe_channel_ == nullptr) return;
  payload::VirtualReady ready;
  ready.vsid = vsid;
  ready.ok = ok;
  ready.error = std::move(error);
  ready.ndaemons = ndaemons;
  self_.send(fe_channel_,
             LmonpMessage::fe_daemon(cls_, FeDaemonMsg::VirtualReady,
                                     ready.encode())
                 .encode());
}

Status DaemonRuntime::vbarrier(std::uint32_t vsid,
                               std::function<void()> done) {
  VSession* vs = vsession(vsid);
  if (vs == nullptr) return Status(Rc::Einval, "unknown virtual session");
  const std::uint32_t tag = kUserBarrier + vs->barrier_count++;
  // Barrier = gather(empty) at master + broadcast(release).
  vs->bcast_waiters[tag] = [done = std::move(done)](const Bytes&) {
    if (done) done();
  };
  if (is_master()) {
    vs->gather_waiters[tag] = [this, vsid, tag](auto) {
      iccl_->broadcast(StreamKey{vsid, tag}, {});
    };
  }
  iccl_->contribute(StreamKey{vsid, tag}, {});
  return Status::ok();
}

Status DaemonRuntime::vgather(
    std::uint32_t vsid, Bytes contribution,
    std::function<void(std::vector<std::pair<std::uint32_t, Bytes>>)>
        at_master) {
  VSession* vs = vsession(vsid);
  if (vs == nullptr) return Status(Rc::Einval, "unknown virtual session");
  const std::uint32_t tag = kUserGather + vs->gather_count++;
  if (is_master()) vs->gather_waiters[tag] = std::move(at_master);
  iccl_->contribute(StreamKey{vsid, tag}, std::move(contribution));
  return Status::ok();
}

Status DaemonRuntime::vbroadcast(std::uint32_t vsid, Bytes data,
                                 std::function<void(const Bytes&)> delivered) {
  VSession* vs = vsession(vsid);
  if (vs == nullptr) return Status(Rc::Einval, "unknown virtual session");
  const std::uint32_t tag = kUserBcast + vs->bcast_count++;
  vs->bcast_waiters[tag] = std::move(delivered);
  if (is_master()) {
    iccl_->broadcast(StreamKey{vsid, tag}, std::move(data));
    return Status::ok();
  }
  // The payload may have raced ahead of this call (see VSession pending
  // buffers).
  auto it = vs->pending_bcasts.find(tag);
  if (it != vs->pending_bcasts.end()) {
    Bytes buffered = std::move(it->second);
    vs->pending_bcasts.erase(it);
    dispatch_vs_bcast(vsid, tag, buffered);
  }
  return Status::ok();
}

Status DaemonRuntime::vscatter(std::uint32_t vsid, std::vector<Bytes> parts,
                               std::function<void(const Bytes&)> delivered) {
  VSession* vs = vsession(vsid);
  if (vs == nullptr) return Status(Rc::Einval, "unknown virtual session");
  const std::uint32_t tag = kUserScatter + vs->scatter_count++;
  vs->scatter_waiters[tag] = std::move(delivered);
  if (is_master()) {
    assert(parts.size() == iccl_->size());
    iccl_->scatter(StreamKey{vsid, tag}, std::move(parts));
    return Status::ok();
  }
  auto it = vs->pending_scatters.find(tag);
  if (it != vs->pending_scatters.end()) {
    Bytes buffered = std::move(it->second);
    vs->pending_scatters.erase(it);
    dispatch_vs_scatter(vsid, tag, buffered);
  }
  return Status::ok();
}

void DaemonRuntime::dispatch_vs_bcast(std::uint32_t vsid, std::uint32_t tag,
                                      const Bytes& data) {
  VSession* vs = vsession(vsid);
  if (vs == nullptr) return;
  auto it = vs->bcast_waiters.find(tag);
  if (it == vs->bcast_waiters.end()) {
    vs->pending_bcasts[tag] = data;  // arrived before the local call
    self_.machine().count("daemon.early_bcast_buffered");
    self_.machine().observe(
        "daemon.early_arrival_depth",
        static_cast<double>(vs->pending_bcasts.size() +
                            vs->pending_scatters.size()));
    return;
  }
  auto fn = std::move(it->second);
  vs->bcast_waiters.erase(it);
  if (fn) fn(data);
}

void DaemonRuntime::dispatch_vs_scatter(std::uint32_t vsid, std::uint32_t tag,
                                        const Bytes& data) {
  VSession* vs = vsession(vsid);
  if (vs == nullptr) return;
  auto it = vs->scatter_waiters.find(tag);
  if (it == vs->scatter_waiters.end()) {
    vs->pending_scatters[tag] = data;  // arrived before the local call
    self_.machine().count("daemon.early_scatter_buffered");
    self_.machine().observe(
        "daemon.early_arrival_depth",
        static_cast<double>(vs->pending_bcasts.size() +
                            vs->pending_scatters.size()));
    return;
  }
  auto fn = std::move(it->second);
  vs->scatter_waiters.erase(it);
  if (fn) fn(data);
}

void DaemonRuntime::on_vs_gather(
    std::uint32_t vsid, std::uint32_t tag,
    std::vector<std::pair<std::uint32_t, Bytes>> entries) {
  VSession* vs = vsession(vsid);
  if (vs == nullptr) return;
  if (vsid != 0 && tag == kTagReadyAck) {
    // Every daemon acked the attach on the session's own stream.
    send_virtual_ready(vsid, entries.size() == iccl_->size(), "",
                       static_cast<std::uint32_t>(entries.size()));
    return;
  }
  auto it = vs->gather_waiters.find(tag);
  if (it == vs->gather_waiters.end()) return;
  auto fn = std::move(it->second);
  vs->gather_waiters.erase(it);
  if (fn) fn(std::move(entries));
}

void DaemonRuntime::dispatch_scatter(std::uint32_t tag, const Bytes& data) {
  dispatch_vs_scatter(0, tag, data);
}

void DaemonRuntime::fail(Status st) {
  if (failed_) return;
  failed_ = true;
  sim::LogLine(sim::LogLevel::Warn, self_.sim().now(), "lmon_daemon")
      << "rank " << (iccl_ ? iccl_->rank() : 0)
      << " session failure: " << st.to_string();
  self_.machine().count("daemon.failures");
  self_.machine().flight_record(self_.pid(), "daemon",
                                "session failure: " + st.to_string());
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    tracer->end_span(span_, "failed: " + st.to_string());
  }
  if (is_master() && fe_channel_ != nullptr) {
    payload::Ready ready;
    ready.ok = false;
    ready.error = st.message();
    self_.send(fe_channel_, LmonpMessage::fe_daemon(cls_, FeDaemonMsg::Ready,
                                                    ready.encode())
                                .encode());
  }
  if (cbs_.on_ready) cbs_.on_ready(st);
}

}  // namespace lmon::core
