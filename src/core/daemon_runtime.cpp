#include "core/daemon_runtime.hpp"

#include <cassert>

#include "cluster/machine.hpp"
#include "common/argparse.hpp"
#include "core/payloads.hpp"
#include "simkernel/log.hpp"

namespace lmon::core {

DaemonRuntime::DaemonRuntime(cluster::Process& self, MsgClass cls)
    : self_(self), cls_(cls) {
  assert(cls == MsgClass::FeBe || cls == MsgClass::FeMw);
}

DaemonRuntime::~DaemonRuntime() = default;

Status DaemonRuntime::init(Callbacks callbacks) {
  cbs_ = std::move(callbacks);
  // The hostname backs the rank-from-host fallback used by launch
  // strategies that hand every daemon an identical argv (tree-rsh).
  auto params = Iccl::params_from_args(self_.args(), self_.node().hostname());
  if (!params) {
    return Status(Rc::Einval,
                  "daemon not launched by LaunchMON (missing --lmon-* argv)");
  }
  fe_host_ = params->fe_host;
  fe_port_ = params->fe_port;

  iccl_ = std::make_unique<Iccl>(self_, std::move(*params));
  iccl_->set_bcast_handler(
      [this](std::uint32_t tag, const Bytes& data) { dispatch_bcast(tag, data); });
  iccl_->set_gather_handler(
      [this](std::uint32_t tag,
             std::vector<std::pair<std::uint32_t, Bytes>> entries) {
        on_internal_gather(tag, std::move(entries));
      });
  iccl_->set_scatter_handler([this](std::uint32_t tag, const Bytes& data) {
    dispatch_scatter(tag, data);
  });

  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    const std::string& session = iccl_->params().session;
    span_ = tracer->begin_span(
        "daemon", "daemon", static_cast<int>(self_.node().id()), self_.pid(),
        tracer->anchor("spawn:" + session + ":" + self_.node().hostname()),
        "rank=" + std::to_string(iccl_->rank()) +
            (iccl_->is_root() ? " master" : ""));
    tracer->set_anchor(
        "daemon:" + session + ":" + std::to_string(iccl_->rank()), span_);
  }
  self_.machine().flight_record(
      self_.pid(), "daemon",
      "init rank=" + std::to_string(iccl_->rank()));

  // The master's handshake with the FE begins immediately (paper e7) while
  // the fabric wires underneath (e8..e9).
  if (iccl_->is_root()) {
    self_.machine().mark(mark_prefix() + "e8_setup_begin");
    connect_fe();
  }
  iccl_->start([this](Status st) { on_fabric_ready(st); });
  return Status::ok();
}

void DaemonRuntime::connect_fe() {
  if (fe_host_.empty() || fe_port_ == 0) {
    fail(Status(Rc::Einval, "no FE endpoint in bootstrap argv"));
    return;
  }
  self_.connect(
      fe_host_, fe_port_, [this](Status st, cluster::ChannelPtr ch) {
        if (!st.is_ok()) {
          fail(Status(Rc::Esubcom, "master cannot reach FE: " + st.message()));
          return;
        }
        fe_channel_ = ch;
        self_.set_channel_handler(
            ch,
            [this](const cluster::ChannelPtr& c, cluster::Message m) {
              on_fe_message(c, std::move(m));
            },
            [this](const cluster::ChannelPtr&) {
              // FE went away: tear the session down.
              if (cbs_.on_shutdown) {
                cbs_.on_shutdown();
              } else {
                self_.exit(0);
              }
            });
        payload::Hello hello;
        hello.session = iccl_->params().session;
        hello.rank = iccl_->rank();
        hello.pid = self_.pid();
        hello.host = self_.node().hostname();
        self_.send(ch, LmonpMessage::fe_daemon(cls_, FeDaemonMsg::Hello,
                                               hello.encode())
                           .encode());
      });
}

void DaemonRuntime::on_fabric_ready(Status st) {
  if (!st.is_ok()) {
    fail(st);
    return;
  }
  fabric_ready_ = true;
  self_.machine().flight_record(self_.pid(), "daemon", "fabric ready");
  if (iccl_->is_root()) {
    self_.machine().mark(mark_prefix() + "e9_setup_done");
    maybe_run_handshake();
  }
}

void DaemonRuntime::on_fe_message(const cluster::ChannelPtr& ch,
                                  cluster::Message m) {
  (void)ch;
  auto msg = LmonpMessage::decode(m);
  if (!msg || msg->msg_class != cls_) return;
  switch (static_cast<FeDaemonMsg>(msg->type)) {
    case FeDaemonMsg::HandshakeInit: {
      auto init = payload::HandshakeInit::decode(msg->lmon_payload);
      if (!init) return;
      buffered_rpdtab_ = std::move(init->rpdtab);
      buffered_usr_ = std::move(msg->usr_payload);
      handshake_buffered_ = true;
      maybe_run_handshake();
      break;
    }
    case FeDaemonMsg::UsrData:
      if (cbs_.on_usrdata) cbs_.on_usrdata(msg->usr_payload);
      break;
    case FeDaemonMsg::Detach:
      iccl_->broadcast(kTagShutdown, {});
      break;
    default:
      break;
  }
}

void DaemonRuntime::maybe_run_handshake() {
  if (!iccl_->is_root() || !fabric_ready_ || !handshake_buffered_ ||
      handshake_done_) {
    return;
  }
  handshake_done_ = true;
  self_.machine().mark(mark_prefix() + "t_collective_begin");
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    collective_span_ = tracer->begin_span(
        "iccl.handshake_collective", "iccl",
        static_cast<int>(self_.node().id()), self_.pid(), span_,
        "size=" + std::to_string(iccl_->size()));
  }
  self_.machine().flight_record(self_.pid(), "daemon",
                                "handshake collective begin");
  // Distribute the RPDTAB + piggybacked tool data down the fabric.
  ByteWriter w;
  w.blob(buffered_rpdtab_);
  w.blob(buffered_usr_);
  iccl_->broadcast(kTagHandshake, std::move(w).take());
}

void DaemonRuntime::on_handshake_bcast(const Bytes& data) {
  ByteReader r(data);
  auto table = r.blob();
  auto usr = r.blob();
  if (!table || !usr) {
    fail(Status(Rc::Esubcom, "malformed handshake broadcast"));
    return;
  }
  auto rpdtab = Rpdtab::unpack(*table);
  if (!rpdtab) {
    fail(Status(Rc::Esubcom, "bad RPDTAB in handshake"));
    return;
  }
  proctable_ = std::move(*rpdtab);
  usrdata_ = std::move(*usr);

  auto ack = [this](Status st) {
    ByteWriter w;
    w.boolean(st.is_ok());
    w.str(st.message());
    iccl_->contribute(kTagReadyAck, std::move(w).take());
    if (!iccl_->is_root()) {
      if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
        tracer->end_span(span_, st.is_ok() ? "ready" : "failed");
      }
      self_.machine().flight_record(self_.pid(), "daemon", "ready ack sent");
    }
    if (cbs_.on_ready && !iccl_->is_root()) cbs_.on_ready(st);
  };
  if (cbs_.on_init) {
    cbs_.on_init(proctable_, usrdata_, ack);
  } else {
    ack(Status::ok());
  }
}

void DaemonRuntime::on_internal_gather(
    std::uint32_t tag, std::vector<std::pair<std::uint32_t, Bytes>> entries) {
  if (tag == kTagReadyAck) {
    // Master: all daemons initialized (or reported failure).
    bool all_ok = entries.size() == iccl_->size();
    std::string error;
    for (const auto& [rank, data] : entries) {
      ByteReader r(data);
      auto ok_f = r.boolean();
      auto msg = r.str();
      if (!ok_f || !*ok_f) {
        all_ok = false;
        if (error.empty() && msg && !msg->empty()) error = *msg;
      }
    }
    self_.machine().mark(mark_prefix() + "t_collective_end");
    if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
      tracer->end_span(collective_span_,
                       "acks=" + std::to_string(entries.size()));
    }
    self_.machine().flight_record(
        self_.pid(), "daemon",
        "handshake collective end acks=" + std::to_string(entries.size()));

    payload::Ready ready;
    ready.ok = all_ok;
    ready.error = error;
    ready.ndaemons = static_cast<std::uint32_t>(entries.size());
    if (fe_channel_ != nullptr) {
      self_.machine().mark(mark_prefix() + "e10_ready");
      self_.send(fe_channel_,
                 LmonpMessage::fe_daemon(cls_, FeDaemonMsg::Ready,
                                         ready.encode(), ready_usr_)
                     .encode());
    }
    if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
      tracer->end_span(span_, all_ok ? "ready" : "failed: " + error);
    }
    if (cbs_.on_ready) {
      cbs_.on_ready(all_ok ? Status::ok() : Status(Rc::Esubcom, error));
    }
    return;
  }
  // User-level gather round.
  auto it = gather_waiters_.find(tag);
  if (it == gather_waiters_.end()) return;
  auto fn = std::move(it->second);
  gather_waiters_.erase(it);
  if (fn) fn(std::move(entries));
}

void DaemonRuntime::dispatch_bcast(std::uint32_t tag, const Bytes& data) {
  if (tag == kTagHandshake) {
    on_handshake_bcast(data);
    return;
  }
  if (tag == kTagShutdown) {
    if (cbs_.on_shutdown) {
      cbs_.on_shutdown();
    } else {
      self_.exit(0);
    }
    return;
  }
  if (tag >= kTagCommandBase && tag < kUserBarrier) {
    if (cbs_.on_command) cbs_.on_command(data);
    return;
  }
  auto it = bcast_waiters_.find(tag);
  if (it == bcast_waiters_.end()) {
    pending_bcasts_[tag] = data;  // arrived before the local call
    self_.machine().count("daemon.early_bcast_buffered");
    self_.machine().observe("daemon.early_arrival_depth",
                            static_cast<double>(pending_bcasts_.size() +
                                                pending_scatters_.size()));
    return;
  }
  auto fn = std::move(it->second);
  bcast_waiters_.erase(it);
  if (fn) fn(data);
}

std::vector<rm::TaskDesc> DaemonRuntime::my_entries() const {
  return proctable_.entries_for_host(self_.node().hostname());
}

Status DaemonRuntime::send_usrdata_fe(Bytes b) {
  if (!is_master()) {
    return Status(Rc::Einval, "only the master daemon talks to the FE");
  }
  if (fe_channel_ == nullptr) return Status(Rc::Esubcom, "no FE link");
  self_.send(fe_channel_, LmonpMessage::fe_daemon(cls_, FeDaemonMsg::UsrData,
                                                  {}, std::move(b))
                              .encode());
  return Status::ok();
}

Status DaemonRuntime::broadcast_command(Bytes data) {
  if (!is_master()) {
    return Status(Rc::Einval, "only the master broadcasts commands");
  }
  // One tag per round: see kTagCommandBase.
  const std::uint32_t tag =
      kTagCommandBase +
      (command_count_++ % (kUserBarrier - kTagCommandBase));
  iccl_->broadcast(tag, std::move(data));
  return Status::ok();
}

void DaemonRuntime::barrier(std::function<void()> done) {
  const std::uint32_t tag = kUserBarrier + barrier_count_++;
  // Barrier = gather(empty) at master + broadcast(release).
  bcast_waiters_[tag] = [done = std::move(done)](const Bytes&) {
    if (done) done();
  };
  if (is_master()) {
    gather_waiters_[tag] = [this, tag](auto) { iccl_->broadcast(tag, {}); };
  }
  iccl_->contribute(tag, {});
}

void DaemonRuntime::gather(
    Bytes contribution,
    std::function<void(std::vector<std::pair<std::uint32_t, Bytes>>)>
        at_master) {
  const std::uint32_t tag = kUserGather + gather_count_++;
  if (is_master()) gather_waiters_[tag] = std::move(at_master);
  iccl_->contribute(tag, std::move(contribution));
}

void DaemonRuntime::broadcast(Bytes data,
                              std::function<void(const Bytes&)> delivered) {
  const std::uint32_t tag = kUserBcast + bcast_count_++;
  bcast_waiters_[tag] = std::move(delivered);
  if (is_master()) {
    iccl_->broadcast(tag, std::move(data));
    return;
  }
  // The payload may have raced ahead of this call (see pending_bcasts_).
  auto it = pending_bcasts_.find(tag);
  if (it != pending_bcasts_.end()) {
    Bytes buffered = std::move(it->second);
    pending_bcasts_.erase(it);
    dispatch_bcast(tag, buffered);
  }
}

void DaemonRuntime::scatter(std::vector<Bytes> parts,
                            std::function<void(const Bytes&)> delivered) {
  const std::uint32_t tag = kUserScatter + scatter_count_++;
  scatter_waiters_[tag] = std::move(delivered);
  if (is_master()) {
    assert(parts.size() == iccl_->size());
    iccl_->scatter(tag, std::move(parts));
    return;
  }
  auto it = pending_scatters_.find(tag);
  if (it != pending_scatters_.end()) {
    Bytes buffered = std::move(it->second);
    pending_scatters_.erase(it);
    dispatch_scatter(tag, buffered);
  }
}

void DaemonRuntime::dispatch_scatter(std::uint32_t tag, const Bytes& data) {
  auto it = scatter_waiters_.find(tag);
  if (it == scatter_waiters_.end()) {
    pending_scatters_[tag] = data;  // arrived before the local call
    self_.machine().count("daemon.early_scatter_buffered");
    self_.machine().observe("daemon.early_arrival_depth",
                            static_cast<double>(pending_bcasts_.size() +
                                                pending_scatters_.size()));
    return;
  }
  auto fn = std::move(it->second);
  scatter_waiters_.erase(it);
  if (fn) fn(data);
}

void DaemonRuntime::fail(Status st) {
  if (failed_) return;
  failed_ = true;
  sim::LogLine(sim::LogLevel::Warn, self_.sim().now(), "lmon_daemon")
      << "rank " << (iccl_ ? iccl_->rank() : 0)
      << " session failure: " << st.to_string();
  self_.machine().count("daemon.failures");
  self_.machine().flight_record(self_.pid(), "daemon",
                                "session failure: " + st.to_string());
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    tracer->end_span(span_, "failed: " + st.to_string());
  }
  if (is_master() && fe_channel_ != nullptr) {
    payload::Ready ready;
    ready.ok = false;
    ready.error = st.message();
    self_.send(fe_channel_, LmonpMessage::fe_daemon(cls_, FeDaemonMsg::Ready,
                                                    ready.encode())
                                .encode());
  }
  if (cbs_.on_ready) cbs_.on_ready(st);
}

}  // namespace lmon::core
