// comm_node.hpp - TBON communication daemon programs.
//
// Two flavors of the same daemon, differing only in how they learn the
// topology - exactly the contrast the paper's STAT case study measures:
//
//  * AdHocCommNode: topology arrives hex-encoded on argv (MRNet's manual
//    topology-file mechanism), process started via rsh.
//  * LmonCommNode: launched through the LaunchMON MW API onto RM-allocated
//    middleware nodes; the topology is piggybacked on the FE<->MW-master
//    handshake and the paper notes STAT "uses LMONP to broadcast MRNet
//    communication tree information ... previously communicated through
//    less scalable methods".
#pragma once

#include <memory>

#include "cluster/process.hpp"
#include "core/mw_api.hpp"
#include "tbon/endpoint.hpp"

namespace lmon::tbon {

class AdHocCommNode : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "tbon_commd";
  }
  void on_start(cluster::Process& self) override;

  static void install(cluster::Machine& machine);

 private:
  std::unique_ptr<TbonEndpoint> endpoint_;
};

class LmonCommNode : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "tbon_commd_lmon";
  }
  void on_start(cluster::Process& self) override;

  static void install(cluster::Machine& machine);

 private:
  std::unique_ptr<core::MiddleWare> mw_;
  std::unique_ptr<TbonEndpoint> endpoint_;
};

}  // namespace lmon::tbon
