#include "tbon/startup.hpp"

namespace lmon::tbon {

std::vector<std::string> adhoc_args(const Topology& topo, int index) {
  std::vector<std::string> args;
  args.push_back("--tbon-topology=" + to_hex(topo.pack()));
  args.push_back("--tbon-index=" + std::to_string(index));
  return args;
}

void adhoc_launch(cluster::Process& fe, const Topology& topo,
                  const std::string& comm_exe, const std::string& be_exe,
                  const std::vector<std::string>& be_extra_args,
                  std::function<void(rsh::LaunchOutcome)> cb) {
  std::vector<rsh::LaunchTarget> targets;
  const auto& nodes = topo.nodes();
  // Comm daemons first, in index order (parents before children since
  // balanced() lays them out breadth-first).
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i].is_backend) continue;
    targets.push_back(rsh::LaunchTarget{
        nodes[i].host, comm_exe, adhoc_args(topo, static_cast<int>(i))});
  }
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (!nodes[i].is_backend) continue;
    auto args = adhoc_args(topo, static_cast<int>(i));
    args.insert(args.end(), be_extra_args.begin(), be_extra_args.end());
    targets.push_back(
        rsh::LaunchTarget{nodes[i].host, be_exe, std::move(args)});
  }
  rsh::SerialRshLauncher::launch(fe, std::move(targets), std::move(cb));
}

}  // namespace lmon::tbon
