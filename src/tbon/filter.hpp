// filter.hpp - TBON upstream reduction filters.
//
// MRNet's defining feature: data flowing toward the root is reduced at each
// internal node by a filter, so the FE sees aggregate state instead of N
// raw messages. Filters are pure functions over byte payloads, registered
// globally by id so comm-node daemons can look them up (real MRNet loads
// them from shared objects).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.hpp"

namespace lmon::tbon {

/// Combines several upstream payloads into one.
using FilterFn = std::function<Bytes(const std::vector<Bytes>&)>;

// Built-in filter ids.
inline constexpr std::uint32_t kFilterConcat = 0;  ///< length-prefixed concat
inline constexpr std::uint32_t kFilterSumU64 = 1;  ///< element-wise u64 sum
inline constexpr std::uint32_t kFilterMaxU64 = 2;  ///< element-wise u64 max
// Tool-registered filters start here (STAT registers its merge at 100).
inline constexpr std::uint32_t kFilterUserBase = 100;

class FilterRegistry {
 public:
  static FilterRegistry& instance();

  /// `framed`: whether the filter operates on concat frames (leaf payloads
  /// get wrapped before entering the stream; concat-style and structured
  /// merge filters want this) or on raw payloads (element-wise reductions
  /// like sum/max).
  void register_filter(std::uint32_t id, FilterFn fn, bool framed = true);
  [[nodiscard]] const FilterFn* find(std::uint32_t id) const;
  [[nodiscard]] bool framed(std::uint32_t id) const;

  /// Applies filter `id`; unknown ids fall back to concat (safe default).
  [[nodiscard]] Bytes apply(std::uint32_t id,
                            const std::vector<Bytes>& inputs) const;

 private:
  struct Entry {
    std::uint32_t id;
    FilterFn fn;
    bool framed;
  };
  FilterRegistry();
  std::vector<Entry> filters_;
};

/// Concat encoding helpers (the default filter frames inputs so they can be
/// split again at the root).
Bytes concat_payloads(const std::vector<Bytes>& inputs);
std::vector<Bytes> split_concat(const Bytes& data);
/// Leaf payloads must be wrapped before entering a concat-filtered stream.
Bytes wrap_leaf_payload(const Bytes& payload);

}  // namespace lmon::tbon
