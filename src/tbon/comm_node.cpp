#include "tbon/comm_node.hpp"

#include "cluster/machine.hpp"
#include "common/argparse.hpp"

namespace lmon::tbon {

void AdHocCommNode::on_start(cluster::Process& self) {
  const auto topo_hex = arg_value(self.args(), "--tbon-topology=");
  const auto index = arg_int(self.args(), "--tbon-index=");
  if (!topo_hex || !index) {
    self.exit(1);
    return;
  }
  auto blob = from_hex(*topo_hex);
  if (!blob) {
    self.exit(1);
    return;
  }
  auto topo = Topology::unpack(*blob);
  if (!topo || !topo->valid()) {
    self.exit(1);
    return;
  }
  TbonEndpoint::Callbacks cbs;  // pure forwarding node: default callbacks
  endpoint_ = std::make_unique<TbonEndpoint>(
      self, std::move(*topo), static_cast<int>(*index), std::move(cbs));
  endpoint_->start();
}

void AdHocCommNode::install(cluster::Machine& machine) {
  cluster::ProgramImage image;
  image.image_mb = 6.0;
  image.factory = [](const std::vector<std::string>&) {
    return std::make_unique<AdHocCommNode>();
  };
  machine.install_program("tbon_commd", std::move(image));
}

void LmonCommNode::on_start(cluster::Process& self) {
  mw_ = std::make_unique<core::MiddleWare>(self);
  core::MiddleWare::Callbacks cbs;
  cbs.on_init = [this, &self](const core::Rpdtab&, const Bytes& usrdata,
                              std::function<void(Status)> done) {
    // The TBON topology is the piggybacked tool data.
    auto topo = Topology::unpack(usrdata);
    if (!topo || !topo->valid()) {
      done(Status(Rc::Ebdarg, "no topology in MW handshake"));
      return;
    }
    // MW personality handle r occupies topology slot 1+r (comm daemons are
    // laid out breadth-first after the FE root).
    const int index = 1 + static_cast<int>(mw_->rank());
    TbonEndpoint::Callbacks tcbs;
    endpoint_ = std::make_unique<TbonEndpoint>(self, std::move(*topo), index,
                                               std::move(tcbs));
    endpoint_->start();
    done(Status::ok());
  };
  const Status st = mw_->init(std::move(cbs));
  if (!st.is_ok()) self.exit(1);
}

void LmonCommNode::install(cluster::Machine& machine) {
  cluster::ProgramImage image;
  image.image_mb = 6.0;
  image.factory = [](const std::vector<std::string>&) {
    return std::make_unique<LmonCommNode>();
  };
  machine.install_program("tbon_commd_lmon", std::move(image));
}

}  // namespace lmon::tbon
