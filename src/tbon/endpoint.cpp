#include "tbon/endpoint.hpp"

#include <cassert>

#include "cluster/machine.hpp"
#include "simkernel/log.hpp"

namespace lmon::tbon {

namespace {
const char* packet_kind_name(PacketKind kind) {
  switch (kind) {
    case PacketKind::Hello: return "hello";
    case PacketKind::SubtreeUp: return "subtree_up";
    case PacketKind::NewStream: return "new_stream";
    case PacketKind::Down: return "down";
    case PacketKind::Up: return "up";
    case PacketKind::UpPart: return "up_part";
  }
  return "?";
}
}  // namespace

bool subtree_has_backend(const Topology& topo, int index) {
  const auto& nodes = topo.nodes();
  if (nodes[static_cast<std::size_t>(index)].is_backend) return true;
  for (int c : topo.children_of(index)) {
    if (subtree_has_backend(topo, c)) return true;
  }
  return false;
}

TbonEndpoint::TbonEndpoint(cluster::Process& self, Topology topology,
                           int my_index, Callbacks callbacks)
    : self_(self),
      topo_(std::move(topology)),
      my_index_(my_index),
      cbs_(std::move(callbacks)) {
  for (int c : topo_.children_of(my_index_)) {
    if (subtree_has_backend(topo_, c)) {
      expected_children_.push_back(c);
      expected_live_.insert(c);
      subtree_up_pending_.insert(c);
    }
  }
  parent_index_ =
      topo_.nodes()[static_cast<std::size_t>(my_index_)].parent;
}

std::set<int> TbonEndpoint::live_children() const {
  std::set<int> out;
  for (const auto& [idx, ch] : children_) out.insert(idx);
  return out;
}

void TbonEndpoint::start() {
  const TopoNode& me = topo_.nodes()[static_cast<std::size_t>(my_index_)];
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    // Parent chain is best-effort: a child dialing a still-booting parent
    // may begin before the parent's anchor exists.
    const obs::SpanId parent =
        is_root() ? obs::kNoSpan
                  : tracer->anchor("tbon:node:" + std::to_string(me.parent));
    span_ = tracer->begin_span(
        "tbon.bootstrap", "tbon", static_cast<int>(self_.node().id()),
        self_.pid(), parent,
        "index=" + std::to_string(my_index_) +
            (me.is_backend ? " backend" : "") + (is_root() ? " root" : ""));
    tracer->set_anchor("tbon:node:" + std::to_string(my_index_), span_);
  }
  if (!expected_children_.empty()) {
    assert(me.port != 0 && "internal TBON nodes need a listening port");
    const Status st = self_.listen(me.port, [this](cluster::ChannelPtr ch) {
      self_.set_channel_handler(
          ch,
          [this](const cluster::ChannelPtr& c, cluster::Message m) {
            on_packet(c, std::move(m));
          },
          [this](const cluster::ChannelPtr& c) {
            if (!ready_fired_) {
              fail(Status(Rc::Esubcom, "TBON child lost"));
            } else if (heal_) {
              on_child_lost(c);
            }
          });
    });
    if (!st.is_ok()) {
      fail(st);
      return;
    }
  }
  if (is_root()) {
    parent_linked_ = true;
    maybe_tree_ready();
  } else {
    connect_parent(kConnectRetries);
  }
}

void TbonEndpoint::connect_parent(int attempts_left) {
  const TopoNode& me = topo_.nodes()[static_cast<std::size_t>(my_index_)];
  const TopoNode& parent =
      topo_.nodes()[static_cast<std::size_t>(me.parent)];
  self_.connect(
      parent.host, parent.port,
      [this, attempts_left](Status st, cluster::ChannelPtr ch) {
        if (!st.is_ok()) {
          if (attempts_left > 0) {
            self_.post(kRetryDelay, [this, attempts_left] {
              connect_parent(attempts_left - 1);
            });
          } else {
            fail(Status(Rc::Esubcom, "cannot reach TBON parent"));
          }
          return;
        }
        parent_ = ch;
        self_.set_channel_handler(
            ch,
            [this](const cluster::ChannelPtr& c, cluster::Message m) {
              on_packet(c, std::move(m));
            },
            [this](const cluster::ChannelPtr&) {
              parent_ = nullptr;  // overlay teardown
              if (heal_ && ready_fired_) begin_reparent();
            });
        Packet hello;
        hello.kind = PacketKind::Hello;
        hello.node_index = my_index_;
        self_.send(ch, hello.encode());
        parent_linked_ = true;
        maybe_tree_ready();
      });
}

void TbonEndpoint::on_packet(const cluster::ChannelPtr& ch,
                             cluster::Message m) {
  auto packet = Packet::decode(m);
  if (!packet) return;
  self_.machine().count("tbon.packets");
  self_.machine().count(std::string("tbon.packets.") +
                        packet_kind_name(packet->kind));
  if (packet->session != 0) {
    self_.machine().count("tbon.s" + std::to_string(packet->session) +
                          ".packets");
  }
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    tracer->instant("tbon.packet", "tbon",
                    static_cast<int>(self_.node().id()), self_.pid(), span_,
                    std::string("kind=") + packet_kind_name(packet->kind) +
                        " stream=" + std::to_string(packet->stream) +
                        " tag=" + std::to_string(packet->tag) +
                        " from=" + std::to_string(packet->node_index));
  }
  // Partial contributions ride the cheap chunk-handling path: they are
  // fixed-size and headerless, so receive cost mirrors an ICCL chunk, not
  // a full message unpack.
  const auto& costs = self_.machine().costs();
  const sim::Time handle_cost = packet->kind == PacketKind::UpPart
                                    ? costs.iccl_chunk_handle
                                    : costs.iccl_msg_handle;
  self_.post(handle_cost,
             [this, ch, p = std::move(*packet)]() mutable {
               switch (p.kind) {
                 case PacketKind::Hello:
                   handle_hello(ch, p.node_index);
                   break;
                 case PacketKind::SubtreeUp:
                   handle_subtree_up(p.node_index);
                   break;
                 case PacketKind::NewStream:
                 case PacketKind::Down:
                   handle_down(p);
                   break;
                 case PacketKind::Up:
                   handle_up(p.node_index, std::move(p));
                   break;
                 case PacketKind::UpPart:
                   handle_up_part(p.node_index, std::move(p));
                   break;
               }
             });
}

void TbonEndpoint::handle_hello(const cluster::ChannelPtr& ch,
                                int child_index) {
  // Child registration serializes at the parent (accept + validation +
  // routing update). A 1-deep root registers every back end itself, which
  // is the "MRNet handshaking" component of Fig. 6's startup time.
  const sim::Time cost = self_.machine().costs().tbon_register_cost;
  const sim::Time now = self_.sim().now();
  if (register_busy_until_ < now) register_busy_until_ = now;
  register_busy_until_ += cost;
  const sim::Time delay = register_busy_until_ - now;
  self_.machine().count("tbon.children_registered");
  self_.machine().observe("tbon.register_delay_ms", sim::to_ms(delay));
  self_.post(delay, [this, ch, child_index] {
    const bool adoption = heal_ && ready_fired_;
    children_[child_index] = ch;
    if (adoption) {
      // An orphan (possibly from a deeper level) re-Helloed us after its
      // parent died. Fold it into the live membership and catch it up on
      // every stream announced while it was detached, so its upstream
      // contributions land with the right filter.
      self_.machine().count("tbon.heal.adoptions");
      if (subtree_has_backend(topo_, child_index)) {
        expected_live_.insert(child_index);
      }
      for (const auto& [stream, filter] : stream_filters_) {
        Packet ann;
        ann.kind = PacketKind::NewStream;
        ann.session = session_of(stream);
        ann.stream = stream;
        ann.filter = filter;
        self_.send(ch, ann.encode());
        self_.machine().count("tbon.heal.streams_replayed");
      }
      return;
    }
    maybe_tree_ready();
  });
}

void TbonEndpoint::on_child_lost(const cluster::ChannelPtr& ch) {
  int lost = -1;
  for (const auto& [idx, link] : children_) {
    if (link == ch) {
      lost = idx;
      break;
    }
  }
  if (lost < 0) return;
  children_.erase(lost);
  expected_live_.erase(lost);
  self_.machine().count("tbon.heal.children_lost");
  self_.machine().flight_record(
      self_.pid(), "tbon",
      "node " + std::to_string(my_index_) + " lost child " +
          std::to_string(lost) + " post-ready (healing)");
  // Rounds in flight across the failure would wait forever on the dead
  // subtree: drop its pending entry and let stragglers complete. Its
  // contribution to those rounds is lost by design (the orphan re-sends
  // nothing at this layer); rounds opened after adoption are whole again.
  std::vector<std::uint64_t> keys;
  keys.reserve(rounds_.size());
  for (auto& [key, round] : rounds_) {
    if (round.pending_children.erase(lost) != 0) keys.push_back(key);
  }
  for (const std::uint64_t key : keys) maybe_complete_round(key);
}

void TbonEndpoint::begin_reparent() {
  if (parent_index_ < 0) return;
  const int grandparent =
      topo_.nodes()[static_cast<std::size_t>(parent_index_)].parent;
  if (grandparent < 0) {
    // Our parent was the root (the FE). Nothing above to climb to - the
    // session is over, and the pre-heal teardown semantics apply.
    self_.machine().count("tbon.heal.give_ups");
    return;
  }
  self_.machine().count("tbon.heal.orphaned");
  self_.machine().flight_record(
      self_.pid(), "tbon",
      "node " + std::to_string(my_index_) + " orphaned (parent " +
          std::to_string(parent_index_) + " died), climbing");
  try_reattach(grandparent, kHealConnectRetries);
}

void TbonEndpoint::try_reattach(int target, int attempts_left) {
  const TopoNode& node = topo_.nodes()[static_cast<std::size_t>(target)];
  self_.connect(
      node.host, node.port,
      [this, target, attempts_left](Status st, cluster::ChannelPtr ch) {
        if (!st.is_ok()) {
          if (attempts_left > 0) {
            self_.post(kRetryDelay, [this, target, attempts_left] {
              try_reattach(target, attempts_left - 1);
            });
            return;
          }
          // This ancestor is dead too (correlated failure): climb past it.
          const int next =
              topo_.nodes()[static_cast<std::size_t>(target)].parent;
          if (next < 0) {
            self_.machine().count("tbon.heal.give_ups");
            return;
          }
          try_reattach(next, kHealConnectRetries);
          return;
        }
        parent_ = ch;
        parent_index_ = target;
        self_.machine().count("tbon.heal.reattaches");
        self_.set_channel_handler(
            ch,
            [this](const cluster::ChannelPtr& c, cluster::Message m) {
              on_packet(c, std::move(m));
            },
            [this](const cluster::ChannelPtr&) {
              parent_ = nullptr;
              if (heal_ && ready_fired_) begin_reparent();
            });
        Packet hello;
        hello.kind = PacketKind::Hello;
        hello.node_index = my_index_;
        self_.send(ch, hello.encode());
      });
}

void TbonEndpoint::handle_subtree_up(int child_index) {
  subtree_up_pending_.erase(child_index);
  maybe_tree_ready();
}

void TbonEndpoint::maybe_tree_ready() {
  if (ready_fired_ || !parent_linked_) return;
  if (children_.size() != expected_children_.size()) return;
  // Leaves of the wave: BE children report implicitly via Hello; comm
  // children must additionally confirm their subtree.
  for (int c : expected_children_) {
    const bool child_is_backend =
        topo_.nodes()[static_cast<std::size_t>(c)].is_backend;
    if (!child_is_backend && subtree_up_pending_.count(c) != 0) return;
  }
  ready_fired_ = true;
  if (obs::Tracer* tracer = self_.machine().tracer();
      tracer != nullptr && span_ != obs::kNoSpan) {
    tracer->end_span(span_,
                     "ready children=" + std::to_string(children_.size()));
  }
  if (!is_root() && parent_ != nullptr) {
    Packet up;
    up.kind = PacketKind::SubtreeUp;
    up.node_index = my_index_;
    self_.send(parent_, up.encode());
  }
  if (cbs_.on_tree_ready) cbs_.on_tree_ready(Status::ok());
}

std::uint32_t TbonEndpoint::new_stream(std::uint32_t filter_id,
                                       std::uint32_t session) {
  assert(is_root());
  const std::uint32_t stream = next_stream_++;
  stream_filters_[stream] = filter_id;
  stream_sessions_[stream] = session;
  if (session != 0) count_stream(stream, "session_streams");
  Packet p;
  p.kind = PacketKind::NewStream;
  p.session = session;
  p.stream = stream;
  p.filter = filter_id;
  handle_down(p);
  return stream;
}

std::uint32_t TbonEndpoint::session_of(std::uint32_t stream) const {
  auto it = stream_sessions_.find(stream);
  return it == stream_sessions_.end() ? 0 : it->second;
}

void TbonEndpoint::count_stream(std::uint32_t stream, const char* name,
                                double v) {
  self_.machine().count(std::string("tbon.") + name, v);
  const std::uint32_t session = session_of(stream);
  if (session != 0) {
    self_.machine().count(
        "tbon.s" + std::to_string(session) + "." + name, v);
  }
}

std::uint32_t TbonEndpoint::filter_of(std::uint32_t stream) const {
  auto it = stream_filters_.find(stream);
  return it == stream_filters_.end() ? kFilterConcat : it->second;
}

void TbonEndpoint::send_down(std::uint32_t stream, std::uint32_t tag,
                             Bytes data) {
  assert(is_root());
  count_stream(stream, "downs");
  Packet p;
  p.kind = PacketKind::Down;
  p.session = session_of(stream);
  p.stream = stream;
  p.tag = tag;
  p.data = std::move(data);
  handle_down(p);
}

void TbonEndpoint::handle_down(const Packet& p) {
  if (p.kind == PacketKind::NewStream) {
    stream_filters_[p.stream] = p.filter;
    stream_sessions_[p.stream] = p.session;
  }
  if (!children_.empty()) {
    self_.machine().count("tbon.down_forwards",
                          static_cast<double>(children_.size()));
  }
  for (auto& [idx, ch] : children_) {
    self_.send(ch, p.encode());
  }
  const bool is_leaf = expected_children_.empty();
  if (p.kind == PacketKind::Down && (is_leaf || !is_root()) && cbs_.on_down) {
    cbs_.on_down(p.stream, p.tag, p.data);
  }
}

void TbonEndpoint::send_up(std::uint32_t stream, std::uint32_t tag,
                           Bytes data) {
  const TopoNode& me = topo_.nodes()[static_cast<std::size_t>(my_index_)];
  count_stream(stream, "ups");
  Packet p;
  p.kind = PacketKind::Up;
  p.session = session_of(stream);
  p.stream = stream;
  p.tag = tag;
  p.node_index = my_index_;
  if (me.is_backend) {
    p.ranks.push_back(static_cast<std::uint32_t>(me.be_rank));
    // Framed filters (concat, structured merges) expect leaf payloads
    // wrapped; raw reductions (sum/max) operate on the bytes directly.
    p.data = FilterRegistry::instance().framed(filter_of(stream))
                 ? wrap_leaf_payload(data)
                 : std::move(data);
  } else {
    p.data = std::move(data);
  }
  if (parent_ != nullptr) {
    self_.send(parent_, p.encode());
  } else if (is_root() && cbs_.on_up) {
    // Degenerate rootless-parent delivery: fold any locally buffered parts
    // (send_up_part on a single-node overlay) before handing to the FE.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(stream) << 32) | tag;
    auto it = rounds_.find(key);
    if (it != rounds_.end() && it->second.acc_valid) {
      fold_into_round(it->second, stream, std::move(p.data));
      const Bytes reduced = std::move(it->second.acc);
      rounds_.erase(it);
      cbs_.on_up(stream, tag, reduced, p.ranks);
    } else {
      cbs_.on_up(stream, tag, p.data, p.ranks);
    }
  }
}

void TbonEndpoint::send_up_part(std::uint32_t stream, std::uint32_t tag,
                                Bytes data) {
  const TopoNode& me = topo_.nodes()[static_cast<std::size_t>(my_index_)];
  Packet p;
  p.kind = PacketKind::UpPart;
  p.session = session_of(stream);
  p.stream = stream;
  p.tag = tag;
  p.node_index = my_index_;
  // Parts carry no ranks: coverage accounting stays on the final Up.
  p.data = me.is_backend &&
                   FilterRegistry::instance().framed(filter_of(stream))
               ? wrap_leaf_payload(data)
               : std::move(data);
  if (parent_ != nullptr) {
    self_.send(parent_, p.encode());
  } else if (is_root()) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(stream) << 32) | tag;
    fold_into_round(round_for(key), stream, std::move(p.data));
  }
}

TbonEndpoint::Round& TbonEndpoint::round_for(std::uint64_t key) {
  auto it = rounds_.find(key);
  if (it == rounds_.end()) {
    Round round;
    if (heal_) {
      // Live membership: losses shrink it, adoptions (including orphans
      // from deeper levels) grow it, so a round opened after a failure
      // waits for exactly the surviving tree.
      round.pending_children = expected_live_;
    } else {
      for (int c : expected_children_) round.pending_children.insert(c);
    }
    it = rounds_.emplace(key, std::move(round)).first;
  }
  return it->second;
}

void TbonEndpoint::fold_into_round(Round& round, std::uint32_t stream,
                                   Bytes data) {
  // Incremental left fold: byte-identical to the all-at-once apply() for
  // associative filters (concat flattens nested frames; the structured
  // merges are order-stable), which is what lets a hop discard child bytes
  // the moment they arrive instead of staging the whole round.
  if (!round.acc_valid) {
    round.acc =
        FilterRegistry::instance().apply(filter_of(stream), {data});
    round.acc_valid = true;
    return;
  }
  round.acc = FilterRegistry::instance().apply(
      filter_of(stream), {std::move(round.acc), std::move(data)});
}

void TbonEndpoint::maybe_flush_part(Round& round, std::uint32_t stream,
                                    std::uint32_t tag) {
  // Root has nowhere to stream to; everyone else relays the accumulator
  // upward once it outgrows a chunk so per-level memory stays O(chunk).
  if (is_root() || parent_ == nullptr || !round.acc_valid) return;
  const std::size_t chunk = self_.machine().costs().iccl_rndv_chunk_bytes;
  if (round.acc.size() < chunk) return;
  count_stream(stream, "part_flushes");
  Packet part;
  part.kind = PacketKind::UpPart;
  part.session = session_of(stream);
  part.stream = stream;
  part.tag = tag;
  part.node_index = my_index_;
  part.data = std::move(round.acc);
  round.acc.clear();
  round.acc_valid = false;
  self_.send(parent_, part.encode());
}

void TbonEndpoint::handle_up_part(int child_index, Packet p) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(p.stream) << 32) | p.tag;
  Round& round = round_for(key);
  (void)child_index;  // sender stays pending until its final Up
  count_stream(p.stream, "up_parts");
  count_stream(p.stream, "up_part_bytes",
               static_cast<double>(p.data.size()));
  fold_into_round(round, p.stream, std::move(p.data));
  maybe_flush_part(round, p.stream, p.tag);
}

void TbonEndpoint::handle_up(int child_index, Packet p) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(p.stream) << 32) | p.tag;
  Round& round = round_for(key);
  round.pending_children.erase(child_index);
  fold_into_round(round, p.stream, std::move(p.data));
  round.ranks.insert(round.ranks.end(), p.ranks.begin(), p.ranks.end());
  if (!round.pending_children.empty()) {
    maybe_flush_part(round, p.stream, p.tag);
    return;
  }
  maybe_complete_round(key);
}

void TbonEndpoint::maybe_complete_round(std::uint64_t key) {
  auto it = rounds_.find(key);
  if (it == rounds_.end() || !it->second.pending_children.empty()) return;
  const auto stream = static_cast<std::uint32_t>(key >> 32);
  const auto tag = static_cast<std::uint32_t>(key & 0xffffffffu);

  // All (surviving) child subtrees contributed: the accumulator IS the
  // reduction.
  count_stream(stream, "rounds_reduced");
  const Bytes reduced = std::move(it->second.acc);
  std::vector<std::uint32_t> ranks = std::move(it->second.ranks);
  std::sort(ranks.begin(), ranks.end());
  rounds_.erase(it);

  if (is_root()) {
    if (cbs_.on_up) cbs_.on_up(stream, tag, reduced, ranks);
    return;
  }
  Packet up;
  up.kind = PacketKind::Up;
  up.stream = stream;
  up.tag = tag;
  up.node_index = my_index_;
  up.ranks = std::move(ranks);
  up.data = reduced;
  if (parent_ != nullptr) self_.send(parent_, up.encode());
}

void TbonEndpoint::fail(Status st) {
  if (ready_fired_) return;
  ready_fired_ = true;
  self_.machine().count("tbon.failures");
  self_.machine().flight_record(self_.pid(), "tbon",
                                "node " + std::to_string(my_index_) +
                                    " failed: " + st.message());
  if (obs::Tracer* tracer = self_.machine().tracer();
      tracer != nullptr && span_ != obs::kNoSpan) {
    tracer->end_span(span_, "failed: " + st.message());
  }
  sim::LogLine(sim::LogLevel::Warn, self_.sim().now(), "tbon")
      << "node " << my_index_ << ": " << st.to_string();
  if (cbs_.on_tree_ready) cbs_.on_tree_ready(st);
}

}  // namespace lmon::tbon
