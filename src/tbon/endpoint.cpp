#include "tbon/endpoint.hpp"

#include <cassert>

#include "cluster/machine.hpp"
#include "simkernel/log.hpp"

namespace lmon::tbon {

namespace {
const char* packet_kind_name(PacketKind kind) {
  switch (kind) {
    case PacketKind::Hello: return "hello";
    case PacketKind::SubtreeUp: return "subtree_up";
    case PacketKind::NewStream: return "new_stream";
    case PacketKind::Down: return "down";
    case PacketKind::Up: return "up";
    case PacketKind::UpPart: return "up_part";
  }
  return "?";
}
}  // namespace

bool subtree_has_backend(const Topology& topo, int index) {
  const auto& nodes = topo.nodes();
  if (nodes[static_cast<std::size_t>(index)].is_backend) return true;
  for (int c : topo.children_of(index)) {
    if (subtree_has_backend(topo, c)) return true;
  }
  return false;
}

TbonEndpoint::TbonEndpoint(cluster::Process& self, Topology topology,
                           int my_index, Callbacks callbacks)
    : self_(self),
      topo_(std::move(topology)),
      my_index_(my_index),
      cbs_(std::move(callbacks)) {
  for (int c : topo_.children_of(my_index_)) {
    if (subtree_has_backend(topo_, c)) {
      expected_children_.push_back(c);
      subtree_up_pending_.insert(c);
    }
  }
}

void TbonEndpoint::start() {
  const TopoNode& me = topo_.nodes()[static_cast<std::size_t>(my_index_)];
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    // Parent chain is best-effort: a child dialing a still-booting parent
    // may begin before the parent's anchor exists.
    const obs::SpanId parent =
        is_root() ? obs::kNoSpan
                  : tracer->anchor("tbon:node:" + std::to_string(me.parent));
    span_ = tracer->begin_span(
        "tbon.bootstrap", "tbon", static_cast<int>(self_.node().id()),
        self_.pid(), parent,
        "index=" + std::to_string(my_index_) +
            (me.is_backend ? " backend" : "") + (is_root() ? " root" : ""));
    tracer->set_anchor("tbon:node:" + std::to_string(my_index_), span_);
  }
  if (!expected_children_.empty()) {
    assert(me.port != 0 && "internal TBON nodes need a listening port");
    const Status st = self_.listen(me.port, [this](cluster::ChannelPtr ch) {
      self_.set_channel_handler(
          ch,
          [this](const cluster::ChannelPtr& c, cluster::Message m) {
            on_packet(c, std::move(m));
          },
          [this](const cluster::ChannelPtr&) {
            if (!ready_fired_) fail(Status(Rc::Esubcom, "TBON child lost"));
          });
    });
    if (!st.is_ok()) {
      fail(st);
      return;
    }
  }
  if (is_root()) {
    parent_linked_ = true;
    maybe_tree_ready();
  } else {
    connect_parent(kConnectRetries);
  }
}

void TbonEndpoint::connect_parent(int attempts_left) {
  const TopoNode& me = topo_.nodes()[static_cast<std::size_t>(my_index_)];
  const TopoNode& parent =
      topo_.nodes()[static_cast<std::size_t>(me.parent)];
  self_.connect(
      parent.host, parent.port,
      [this, attempts_left](Status st, cluster::ChannelPtr ch) {
        if (!st.is_ok()) {
          if (attempts_left > 0) {
            self_.post(kRetryDelay, [this, attempts_left] {
              connect_parent(attempts_left - 1);
            });
          } else {
            fail(Status(Rc::Esubcom, "cannot reach TBON parent"));
          }
          return;
        }
        parent_ = ch;
        self_.set_channel_handler(
            ch,
            [this](const cluster::ChannelPtr& c, cluster::Message m) {
              on_packet(c, std::move(m));
            },
            [this](const cluster::ChannelPtr&) {
              parent_ = nullptr;  // overlay teardown
            });
        Packet hello;
        hello.kind = PacketKind::Hello;
        hello.node_index = my_index_;
        self_.send(ch, hello.encode());
        parent_linked_ = true;
        maybe_tree_ready();
      });
}

void TbonEndpoint::on_packet(const cluster::ChannelPtr& ch,
                             cluster::Message m) {
  auto packet = Packet::decode(m);
  if (!packet) return;
  self_.machine().count("tbon.packets");
  self_.machine().count(std::string("tbon.packets.") +
                        packet_kind_name(packet->kind));
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    tracer->instant("tbon.packet", "tbon",
                    static_cast<int>(self_.node().id()), self_.pid(), span_,
                    std::string("kind=") + packet_kind_name(packet->kind) +
                        " stream=" + std::to_string(packet->stream) +
                        " tag=" + std::to_string(packet->tag) +
                        " from=" + std::to_string(packet->node_index));
  }
  // Partial contributions ride the cheap chunk-handling path: they are
  // fixed-size and headerless, so receive cost mirrors an ICCL chunk, not
  // a full message unpack.
  const auto& costs = self_.machine().costs();
  const sim::Time handle_cost = packet->kind == PacketKind::UpPart
                                    ? costs.iccl_chunk_handle
                                    : costs.iccl_msg_handle;
  self_.post(handle_cost,
             [this, ch, p = std::move(*packet)]() mutable {
               switch (p.kind) {
                 case PacketKind::Hello:
                   handle_hello(ch, p.node_index);
                   break;
                 case PacketKind::SubtreeUp:
                   handle_subtree_up(p.node_index);
                   break;
                 case PacketKind::NewStream:
                 case PacketKind::Down:
                   handle_down(p);
                   break;
                 case PacketKind::Up:
                   handle_up(p.node_index, std::move(p));
                   break;
                 case PacketKind::UpPart:
                   handle_up_part(p.node_index, std::move(p));
                   break;
               }
             });
}

void TbonEndpoint::handle_hello(const cluster::ChannelPtr& ch,
                                int child_index) {
  // Child registration serializes at the parent (accept + validation +
  // routing update). A 1-deep root registers every back end itself, which
  // is the "MRNet handshaking" component of Fig. 6's startup time.
  const sim::Time cost = self_.machine().costs().tbon_register_cost;
  const sim::Time now = self_.sim().now();
  if (register_busy_until_ < now) register_busy_until_ = now;
  register_busy_until_ += cost;
  const sim::Time delay = register_busy_until_ - now;
  self_.machine().count("tbon.children_registered");
  self_.machine().observe("tbon.register_delay_ms", sim::to_ms(delay));
  self_.post(delay, [this, ch, child_index] {
    children_[child_index] = ch;
    maybe_tree_ready();
  });
}

void TbonEndpoint::handle_subtree_up(int child_index) {
  subtree_up_pending_.erase(child_index);
  maybe_tree_ready();
}

void TbonEndpoint::maybe_tree_ready() {
  if (ready_fired_ || !parent_linked_) return;
  if (children_.size() != expected_children_.size()) return;
  // Leaves of the wave: BE children report implicitly via Hello; comm
  // children must additionally confirm their subtree.
  for (int c : expected_children_) {
    const bool child_is_backend =
        topo_.nodes()[static_cast<std::size_t>(c)].is_backend;
    if (!child_is_backend && subtree_up_pending_.count(c) != 0) return;
  }
  ready_fired_ = true;
  if (obs::Tracer* tracer = self_.machine().tracer();
      tracer != nullptr && span_ != obs::kNoSpan) {
    tracer->end_span(span_,
                     "ready children=" + std::to_string(children_.size()));
  }
  if (!is_root() && parent_ != nullptr) {
    Packet up;
    up.kind = PacketKind::SubtreeUp;
    up.node_index = my_index_;
    self_.send(parent_, up.encode());
  }
  if (cbs_.on_tree_ready) cbs_.on_tree_ready(Status::ok());
}

std::uint32_t TbonEndpoint::new_stream(std::uint32_t filter_id) {
  assert(is_root());
  const std::uint32_t stream = next_stream_++;
  stream_filters_[stream] = filter_id;
  Packet p;
  p.kind = PacketKind::NewStream;
  p.stream = stream;
  p.filter = filter_id;
  handle_down(p);
  return stream;
}

std::uint32_t TbonEndpoint::filter_of(std::uint32_t stream) const {
  auto it = stream_filters_.find(stream);
  return it == stream_filters_.end() ? kFilterConcat : it->second;
}

void TbonEndpoint::send_down(std::uint32_t stream, std::uint32_t tag,
                             Bytes data) {
  assert(is_root());
  Packet p;
  p.kind = PacketKind::Down;
  p.stream = stream;
  p.tag = tag;
  p.data = std::move(data);
  handle_down(p);
}

void TbonEndpoint::handle_down(const Packet& p) {
  if (p.kind == PacketKind::NewStream) {
    stream_filters_[p.stream] = p.filter;
  }
  if (!children_.empty()) {
    self_.machine().count("tbon.down_forwards",
                          static_cast<double>(children_.size()));
  }
  for (auto& [idx, ch] : children_) {
    self_.send(ch, p.encode());
  }
  const bool is_leaf = expected_children_.empty();
  if (p.kind == PacketKind::Down && (is_leaf || !is_root()) && cbs_.on_down) {
    cbs_.on_down(p.stream, p.tag, p.data);
  }
}

void TbonEndpoint::send_up(std::uint32_t stream, std::uint32_t tag,
                           Bytes data) {
  const TopoNode& me = topo_.nodes()[static_cast<std::size_t>(my_index_)];
  Packet p;
  p.kind = PacketKind::Up;
  p.stream = stream;
  p.tag = tag;
  p.node_index = my_index_;
  if (me.is_backend) {
    p.ranks.push_back(static_cast<std::uint32_t>(me.be_rank));
    // Framed filters (concat, structured merges) expect leaf payloads
    // wrapped; raw reductions (sum/max) operate on the bytes directly.
    p.data = FilterRegistry::instance().framed(filter_of(stream))
                 ? wrap_leaf_payload(data)
                 : std::move(data);
  } else {
    p.data = std::move(data);
  }
  if (parent_ != nullptr) {
    self_.send(parent_, p.encode());
  } else if (is_root() && cbs_.on_up) {
    // Degenerate rootless-parent delivery: fold any locally buffered parts
    // (send_up_part on a single-node overlay) before handing to the FE.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(stream) << 32) | tag;
    auto it = rounds_.find(key);
    if (it != rounds_.end() && it->second.acc_valid) {
      fold_into_round(it->second, stream, std::move(p.data));
      const Bytes reduced = std::move(it->second.acc);
      rounds_.erase(it);
      cbs_.on_up(stream, tag, reduced, p.ranks);
    } else {
      cbs_.on_up(stream, tag, p.data, p.ranks);
    }
  }
}

void TbonEndpoint::send_up_part(std::uint32_t stream, std::uint32_t tag,
                                Bytes data) {
  const TopoNode& me = topo_.nodes()[static_cast<std::size_t>(my_index_)];
  Packet p;
  p.kind = PacketKind::UpPart;
  p.stream = stream;
  p.tag = tag;
  p.node_index = my_index_;
  // Parts carry no ranks: coverage accounting stays on the final Up.
  p.data = me.is_backend &&
                   FilterRegistry::instance().framed(filter_of(stream))
               ? wrap_leaf_payload(data)
               : std::move(data);
  if (parent_ != nullptr) {
    self_.send(parent_, p.encode());
  } else if (is_root()) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(stream) << 32) | tag;
    fold_into_round(round_for(key), stream, std::move(p.data));
  }
}

TbonEndpoint::Round& TbonEndpoint::round_for(std::uint64_t key) {
  auto it = rounds_.find(key);
  if (it == rounds_.end()) {
    Round round;
    for (int c : expected_children_) round.pending_children.insert(c);
    it = rounds_.emplace(key, std::move(round)).first;
  }
  return it->second;
}

void TbonEndpoint::fold_into_round(Round& round, std::uint32_t stream,
                                   Bytes data) {
  // Incremental left fold: byte-identical to the all-at-once apply() for
  // associative filters (concat flattens nested frames; the structured
  // merges are order-stable), which is what lets a hop discard child bytes
  // the moment they arrive instead of staging the whole round.
  if (!round.acc_valid) {
    round.acc =
        FilterRegistry::instance().apply(filter_of(stream), {data});
    round.acc_valid = true;
    return;
  }
  round.acc = FilterRegistry::instance().apply(
      filter_of(stream), {std::move(round.acc), std::move(data)});
}

void TbonEndpoint::maybe_flush_part(Round& round, std::uint32_t stream,
                                    std::uint32_t tag) {
  // Root has nowhere to stream to; everyone else relays the accumulator
  // upward once it outgrows a chunk so per-level memory stays O(chunk).
  if (is_root() || parent_ == nullptr || !round.acc_valid) return;
  const std::size_t chunk = self_.machine().costs().iccl_rndv_chunk_bytes;
  if (round.acc.size() < chunk) return;
  self_.machine().count("tbon.part_flushes");
  Packet part;
  part.kind = PacketKind::UpPart;
  part.stream = stream;
  part.tag = tag;
  part.node_index = my_index_;
  part.data = std::move(round.acc);
  round.acc.clear();
  round.acc_valid = false;
  self_.send(parent_, part.encode());
}

void TbonEndpoint::handle_up_part(int child_index, Packet p) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(p.stream) << 32) | p.tag;
  Round& round = round_for(key);
  (void)child_index;  // sender stays pending until its final Up
  self_.machine().count("tbon.up_parts");
  self_.machine().count("tbon.up_part_bytes",
                        static_cast<double>(p.data.size()));
  fold_into_round(round, p.stream, std::move(p.data));
  maybe_flush_part(round, p.stream, p.tag);
}

void TbonEndpoint::handle_up(int child_index, Packet p) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(p.stream) << 32) | p.tag;
  Round& round = round_for(key);
  round.pending_children.erase(child_index);
  fold_into_round(round, p.stream, std::move(p.data));
  round.ranks.insert(round.ranks.end(), p.ranks.begin(), p.ranks.end());
  if (!round.pending_children.empty()) {
    maybe_flush_part(round, p.stream, p.tag);
    return;
  }

  // All child subtrees contributed: the accumulator IS the reduction.
  self_.machine().count("tbon.rounds_reduced");
  auto it = rounds_.find(key);
  const Bytes reduced = std::move(it->second.acc);
  std::vector<std::uint32_t> ranks = std::move(it->second.ranks);
  std::sort(ranks.begin(), ranks.end());
  rounds_.erase(it);

  if (is_root()) {
    if (cbs_.on_up) cbs_.on_up(p.stream, p.tag, reduced, ranks);
    return;
  }
  Packet up;
  up.kind = PacketKind::Up;
  up.stream = p.stream;
  up.tag = p.tag;
  up.node_index = my_index_;
  up.ranks = std::move(ranks);
  up.data = reduced;
  if (parent_ != nullptr) self_.send(parent_, up.encode());
}

void TbonEndpoint::fail(Status st) {
  if (ready_fired_) return;
  ready_fired_ = true;
  self_.machine().count("tbon.failures");
  self_.machine().flight_record(self_.pid(), "tbon",
                                "node " + std::to_string(my_index_) +
                                    " failed: " + st.message());
  if (obs::Tracer* tracer = self_.machine().tracer();
      tracer != nullptr && span_ != obs::kNoSpan) {
    tracer->end_span(span_, "failed: " + st.message());
  }
  sim::LogLine(sim::LogLevel::Warn, self_.sim().now(), "tbon")
      << "node " << my_index_ << ": " << st.to_string();
  if (cbs_.on_tree_ready) cbs_.on_tree_ready(st);
}

}  // namespace lmon::tbon
