// startup.hpp - TBON startup orchestration (the Fig. 6 comparison).
//
// adhoc_launch() is the MRNet-native path: the front end serially
// rsh-launches every comm daemon and back-end daemon, passing the topology
// on each command line. Its cost is (per-rsh session cost) x (process
// count) and it dies outright when the FE exhausts its fork limit.
//
// The LaunchMON path needs no helper here: the tool calls the FE API with
// the packed topology as piggybacked data; see tools/stat for the pattern.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/process.hpp"
#include "rsh/launchers.hpp"
#include "tbon/topology.hpp"

namespace lmon::tbon {

/// Serially rsh-launches the overlay: comm daemons first (so parents exist
/// when children dial), then back ends. `be_extra_args` is appended to each
/// back-end command line. Callback delivers the rsh outcome; the TBON
/// root's on_tree_ready fires independently once links are up.
void adhoc_launch(cluster::Process& fe, const Topology& topo,
                  const std::string& comm_exe, const std::string& be_exe,
                  const std::vector<std::string>& be_extra_args,
                  std::function<void(rsh::LaunchOutcome)> cb);

/// Builds the argv a daemon at `index` receives in the ad hoc path.
std::vector<std::string> adhoc_args(const Topology& topo, int index);

}  // namespace lmon::tbon
