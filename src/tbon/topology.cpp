#include "tbon/topology.hpp"

#include <algorithm>

#include "comm/topology.hpp"

namespace lmon::tbon {

Topology Topology::one_deep(const std::string& fe_host,
                            cluster::Port fe_port,
                            const std::vector<std::string>& be_hosts) {
  Topology t;
  t.nodes_.push_back(TopoNode{fe_host, fe_port, -1, false, -1});
  for (std::size_t i = 0; i < be_hosts.size(); ++i) {
    t.nodes_.push_back(
        TopoNode{be_hosts[i], 0, 0, true, static_cast<std::int32_t>(i)});
  }
  return t;
}

Topology Topology::balanced(const std::string& fe_host,
                            cluster::Port fe_port,
                            const std::vector<std::string>& comm_hosts,
                            const std::vector<std::string>& be_hosts,
                            int fanout, cluster::Port comm_port) {
  if (fanout < 1) fanout = 1;
  return shaped(fe_host, fe_port, comm_hosts, be_hosts,
                {comm::TopologyKind::KAry, static_cast<std::uint32_t>(fanout)},
                comm_port);
}

namespace {

/// Back-end block per attach point: capacity-weighted when one weight per
/// attach point is supplied, near-equal otherwise.
std::vector<std::pair<std::size_t, std::size_t>> attach_blocks(
    std::size_t n_backends, std::size_t n_attach,
    const std::vector<double>& attach_weights) {
  if (attach_weights.size() == n_attach && !attach_weights.empty()) {
    return comm::split_weighted(n_backends, attach_weights);
  }
  return comm::split_contiguous(n_backends,
                                static_cast<std::uint32_t>(n_attach));
}

/// Leaf comm ranks (no comm children) in rank order; every comm rank when
/// the shape makes them all interior (cannot happen in the three families,
/// but keeps the fallback of the original attachment logic).
std::vector<std::uint32_t> attach_ranks(const comm::Topology& ct) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < ct.size(); ++i) {
    if (ct.children_of(i).empty()) out.push_back(i);
  }
  if (out.empty()) {
    for (std::uint32_t i = 0; i < ct.size(); ++i) out.push_back(i);
  }
  return out;
}

}  // namespace

Topology Topology::shaped(const std::string& fe_host, cluster::Port fe_port,
                          const std::vector<std::string>& comm_hosts,
                          const std::vector<std::string>& be_hosts,
                          comm::TopologySpec spec, cluster::Port comm_port,
                          const std::vector<double>& attach_weights) {
  // Dedicated middleware hosts never collide, so one shared port suffices.
  return assemble(fe_host, fe_port, comm_hosts,
                  std::vector<cluster::Port>(comm_hosts.size(), comm_port),
                  be_hosts, spec, attach_weights);
}

Topology Topology::assemble(const std::string& fe_host, cluster::Port fe_port,
                            const std::vector<std::string>& comm_hosts,
                            const std::vector<cluster::Port>& comm_ports,
                            const std::vector<std::string>& be_hosts,
                            comm::TopologySpec spec,
                            const std::vector<double>& attach_weights) {
  Topology t;
  t.nodes_.push_back(TopoNode{fe_host, fe_port, -1, false, -1});

  // Comm daemons form a tree of the requested shape rooted at the FE; the
  // tree arithmetic comes from comm::Topology (host index == rank, the
  // rank-0 comm daemon's parent is the FE).
  const comm::Topology ct(spec,
                          static_cast<std::uint32_t>(comm_hosts.size()));
  std::vector<int> comm_indices;
  for (std::size_t i = 0; i < comm_hosts.size(); ++i) {
    const auto parent_rank = ct.parent_of(static_cast<std::uint32_t>(i));
    const int parent = parent_rank ? comm_indices[*parent_rank] : 0;
    t.nodes_.push_back(
        TopoNode{comm_hosts[i], comm_ports[i], parent, false, -1});
    comm_indices.push_back(static_cast<int>(t.nodes_.size()) - 1);
  }

  // Back ends hang off the deepest comm layer (or the FE when no comm
  // nodes), in contiguous blocks: leaf comm daemon i owns the i-th
  // slice of the back-end rank range (near-equal, or capacity-weighted
  // when attach_weights says so). Every comm subtree then covers one
  // contiguous rank interval (comm subtrees own contiguous leaf runs in
  // all three tree families), which keeps scatter partitions and
  // rank-range filters subtree-local. The old round-robin attachment
  // strided consecutive ranks across every leaf daemon instead.
  std::vector<int> attach_points;
  if (comm_indices.empty()) {
    attach_points.push_back(0);
  } else {
    for (std::uint32_t r : attach_ranks(ct)) {
      attach_points.push_back(comm_indices[r]);
    }
  }
  const auto blocks =
      attach_blocks(be_hosts.size(), attach_points.size(), attach_weights);
  std::vector<int> parent_of_rank(be_hosts.size(), attach_points[0]);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (std::size_t r = blocks[b].first;
         r < blocks[b].first + blocks[b].second; ++r) {
      parent_of_rank[r] = attach_points[b];
    }
  }
  for (std::size_t i = 0; i < be_hosts.size(); ++i) {
    t.nodes_.push_back(TopoNode{be_hosts[i], 0, parent_of_rank[i], true,
                                static_cast<std::int32_t>(i)});
  }
  return t;
}

Topology Topology::shaped_colocated(
    const std::string& fe_host, cluster::Port fe_port, std::size_t n_comm,
    const std::vector<std::string>& be_hosts, comm::TopologySpec spec,
    cluster::Port comm_port, const std::vector<double>& attach_weights) {
  if (n_comm == 0 || be_hosts.empty()) {
    return shaped(fe_host, fe_port, {}, be_hosts, spec, comm_port,
                  attach_weights);
  }
  const comm::Topology ct(spec, static_cast<std::uint32_t>(n_comm));
  const auto leaves = attach_ranks(ct);
  const auto blocks =
      attach_blocks(be_hosts.size(), leaves.size(), attach_weights);
  // First back-end rank served through each leaf comm daemon. Empty blocks
  // (weight rounded to zero) borrow the next block's start so the daemon
  // still lands on a job node.
  std::vector<std::size_t> leaf_first(ct.size(), 0);
  for (std::size_t b = 0; b < leaves.size(); ++b) {
    const auto& blk = blocks[b];
    leaf_first[leaves[b]] =
        std::min(blk.first, be_hosts.size() - 1);
  }
  // Each comm daemon sits on the first back-end host of its subtree's
  // contiguous rank run: the lowest leaf_first among its descendant
  // leaves.
  std::vector<std::string> comm_hosts(n_comm);
  std::vector<cluster::Port> comm_ports(n_comm);
  for (std::uint32_t r = 0; r < ct.size(); ++r) {
    std::size_t first = be_hosts.size() - 1;
    for (std::uint32_t s : ct.subtree_of(r)) {
      if (ct.children_of(s).empty()) {
        first = std::min(first, leaf_first[s]);
      }
    }
    comm_hosts[r] = be_hosts[first];
    // An interior daemon shares its host with its first leaf descendant;
    // per-rank ports keep the co-located listeners apart.
    comm_ports[r] = static_cast<cluster::Port>(comm_port + r);
  }
  return assemble(fe_host, fe_port, comm_hosts, comm_ports, be_hosts, spec,
                  attach_weights);
}

std::vector<int> Topology::children_of(int index) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == index) out.push_back(static_cast<int>(i));
  }
  return out;
}

int Topology::index_of_backend(int be_rank) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_backend && nodes_[i].be_rank == be_rank) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int Topology::num_backends() const {
  int n = 0;
  for (const auto& node : nodes_) n += node.is_backend ? 1 : 0;
  return n;
}

int Topology::num_comm_nodes() const {
  return static_cast<int>(nodes_.size()) - num_backends() - 1;
}

int Topology::depth() const {
  int max_depth = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    int d = 0;
    int cur = static_cast<int>(i);
    while (cur > 0 && nodes_[static_cast<std::size_t>(cur)].parent >= 0 &&
           d <= static_cast<int>(nodes_.size())) {
      cur = nodes_[static_cast<std::size_t>(cur)].parent;
      d += 1;
    }
    max_depth = std::max(max_depth, d);
  }
  return max_depth;
}

bool Topology::valid() const {
  if (nodes_.empty()) return false;
  if (nodes_.front().parent != -1) return false;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const TopoNode& n = nodes_[i];
    if (n.parent < 0 || n.parent >= static_cast<std::int32_t>(nodes_.size()) ||
        n.parent == static_cast<std::int32_t>(i)) {
      return false;
    }
    if (nodes_[static_cast<std::size_t>(n.parent)].is_backend) {
      return false;  // back ends must be leaves
    }
    if (!n.is_backend && n.port == 0) return false;
  }
  // Acyclic: every node reaches the root within |nodes| hops.
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    int cur = static_cast<int>(i);
    std::size_t hops = 0;
    while (cur != 0) {
      cur = nodes_[static_cast<std::size_t>(cur)].parent;
      if (cur < 0 || ++hops > nodes_.size()) return false;
    }
  }
  return true;
}

Bytes Topology::pack() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& n : nodes_) {
    w.str(n.host);
    w.u16(n.port);
    w.i32(n.parent);
    w.boolean(n.is_backend);
    w.i32(n.be_rank);
  }
  return std::move(w).take();
}

std::optional<Topology> Topology::unpack(const Bytes& data) {
  ByteReader r(data);
  auto count = r.u32();
  if (!count) return std::nullopt;
  Topology t;
  t.nodes_.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto host = r.str();
    auto port = r.u16();
    auto parent = r.i32();
    auto is_be = r.boolean();
    auto be_rank = r.i32();
    if (!host || !port || !parent || !is_be || !be_rank) return std::nullopt;
    t.nodes_.push_back(
        TopoNode{std::move(*host), *port, *parent, *is_be, *be_rank});
  }
  return t;
}

}  // namespace lmon::tbon
