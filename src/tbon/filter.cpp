#include "tbon/filter.hpp"

#include <algorithm>

namespace lmon::tbon {

Bytes concat_payloads(const std::vector<Bytes>& inputs) {
  // Flatten nested concat frames: inputs that are themselves concat frames
  // are spliced so the root sees one flat list regardless of tree shape.
  ByteWriter w;
  std::uint32_t total = 0;
  std::vector<Bytes> flat;
  for (const auto& in : inputs) {
    auto parts = split_concat(in);
    if (!parts.empty()) {
      for (auto& p : parts) flat.push_back(std::move(p));
    }
  }
  w.u32(0);  // patched below
  for (const auto& p : flat) {
    w.blob(p);
    ++total;
  }
  w.patch_u32(0, total);
  return std::move(w).take();
}

std::vector<Bytes> split_concat(const Bytes& data) {
  ByteReader r(data);
  auto count = r.u32();
  std::vector<Bytes> out;
  if (!count) return out;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto b = r.blob();
    if (!b) return {};
    out.push_back(std::move(*b));
  }
  if (!r.exhausted()) return {};
  return out;
}

/// Wraps a raw leaf payload into a single-element concat frame.
static Bytes wrap_leaf(const Bytes& payload) {
  ByteWriter w;
  w.u32(1);
  w.blob(payload);
  return std::move(w).take();
}

namespace {

Bytes elementwise_u64(const std::vector<Bytes>& inputs, bool take_max) {
  std::vector<std::uint64_t> acc;
  for (const auto& in : inputs) {
    ByteReader r(in);
    std::size_t i = 0;
    while (r.remaining() >= 8) {
      auto v = r.u64();
      if (!v) break;
      if (i >= acc.size()) {
        acc.push_back(*v);
      } else if (take_max) {
        acc[i] = std::max(acc[i], *v);
      } else {
        acc[i] += *v;
      }
      ++i;
    }
  }
  ByteWriter w;
  for (std::uint64_t v : acc) w.u64(v);
  return std::move(w).take();
}

}  // namespace

FilterRegistry::FilterRegistry() {
  filters_.push_back(Entry{kFilterConcat,
                           [](const std::vector<Bytes>& in) {
                             return concat_payloads(in);
                           },
                           true});
  filters_.push_back(Entry{kFilterSumU64,
                           [](const std::vector<Bytes>& in) {
                             return elementwise_u64(in, /*take_max=*/false);
                           },
                           false});
  filters_.push_back(Entry{kFilterMaxU64,
                           [](const std::vector<Bytes>& in) {
                             return elementwise_u64(in, /*take_max=*/true);
                           },
                           false});
}

FilterRegistry& FilterRegistry::instance() {
  static FilterRegistry reg;
  return reg;
}

void FilterRegistry::register_filter(std::uint32_t id, FilterFn fn,
                                     bool framed) {
  for (auto& e : filters_) {
    if (e.id == id) {
      e.fn = std::move(fn);
      e.framed = framed;
      return;
    }
  }
  filters_.push_back(Entry{id, std::move(fn), framed});
}

const FilterFn* FilterRegistry::find(std::uint32_t id) const {
  for (const auto& e : filters_) {
    if (e.id == id) return &e.fn;
  }
  return nullptr;
}

bool FilterRegistry::framed(std::uint32_t id) const {
  for (const auto& e : filters_) {
    if (e.id == id) return e.framed;
  }
  return true;  // unknown ids fall back to concat, which is framed
}

Bytes FilterRegistry::apply(std::uint32_t id,
                            const std::vector<Bytes>& inputs) const {
  const FilterFn* fn = find(id);
  if (fn == nullptr) return concat_payloads(inputs);
  return (*fn)(inputs);
}

Bytes wrap_leaf_payload(const Bytes& payload) { return wrap_leaf(payload); }

}  // namespace lmon::tbon
