// topology.hpp - tree-based overlay network topology (MRNet-like).
//
// A topology describes the TBON process tree: the tool front end at the
// root, optional internal communication daemons on extra nodes, and the
// tool's back-end daemons at the leaves. The paper's STAT evaluation uses a
// "1-deep" (1-to-N) topology: every back end is a direct child of the FE.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/types.hpp"
#include "comm/topology.hpp"
#include "common/bytes.hpp"

namespace lmon::tbon {

struct TopoNode {
  std::string host;
  cluster::Port port = 0;  ///< listening port (0 for leaves; they dial out)
  std::int32_t parent = -1;
  bool is_backend = false;
  std::int32_t be_rank = -1;  ///< back-end index for leaves, -1 otherwise

  friend bool operator==(const TopoNode& a, const TopoNode& b) {
    return a.host == b.host && a.port == b.port && a.parent == b.parent &&
           a.is_backend == b.is_backend && a.be_rank == b.be_rank;
  }
};

class Topology {
 public:
  Topology() = default;

  /// 1-to-N: FE root, every back end a direct child (paper Fig. 6 setup).
  static Topology one_deep(const std::string& fe_host, cluster::Port fe_port,
                           const std::vector<std::string>& be_hosts);

  /// Balanced tree: comm daemons (on `comm_hosts`) form a `fanout`-ary tree
  /// under the FE; back ends are distributed under the deepest comm layer.
  static Topology balanced(const std::string& fe_host, cluster::Port fe_port,
                           const std::vector<std::string>& comm_hosts,
                           const std::vector<std::string>& be_hosts,
                           int fanout, cluster::Port comm_port);

  /// Like balanced() but the comm-daemon layer takes any comm::Topology
  /// shape (k-ary, binomial, flat), making the overlay tree a benchmarkable
  /// axis. `attach_weights`, when it has one entry per back-end attach
  /// point (the leaf comm daemons in rank order; the FE alone when there
  /// are none), sizes each attach point's contiguous back-end block
  /// proportionally (capacity-weighted placement); otherwise blocks are
  /// near-equal.
  static Topology shaped(const std::string& fe_host, cluster::Port fe_port,
                         const std::vector<std::string>& comm_hosts,
                         const std::vector<std::string>& be_hosts,
                         comm::TopologySpec spec, cluster::Port comm_port,
                         const std::vector<double>& attach_weights = {});

  /// Topology-aware placement: like shaped(), but instead of dedicated
  /// middleware hosts each comm daemon is co-located on the first back-end
  /// host of the contiguous rank block its subtree serves (all three tree
  /// families give every comm subtree a contiguous back-end run). The
  /// child -> parent hop for that first block then rides node-local
  /// transport (local_latency) instead of the network, and no extra
  /// allocation is needed for the middleware layer. `n_comm` is the comm
  /// daemon count; weights behave as in shaped().
  static Topology shaped_colocated(const std::string& fe_host,
                                   cluster::Port fe_port, std::size_t n_comm,
                                   const std::vector<std::string>& be_hosts,
                                   comm::TopologySpec spec,
                                   cluster::Port comm_port,
                                   const std::vector<double>& attach_weights
                                   = {});

  [[nodiscard]] const std::vector<TopoNode>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const TopoNode& root() const { return nodes_.front(); }

  [[nodiscard]] std::vector<int> children_of(int index) const;
  [[nodiscard]] int index_of_backend(int be_rank) const;
  [[nodiscard]] int num_backends() const;
  [[nodiscard]] int num_comm_nodes() const;
  /// Depth of the deepest leaf (root = 0); the 1-deep topology returns 1.
  [[nodiscard]] int depth() const;

  /// Structural validation: single root at index 0, acyclic parent links,
  /// back ends are leaves, comm nodes have listening ports.
  [[nodiscard]] bool valid() const;

  [[nodiscard]] Bytes pack() const;
  static std::optional<Topology> unpack(const Bytes& data);

  friend bool operator==(const Topology& a, const Topology& b) {
    return a.nodes_ == b.nodes_;
  }

 private:
  /// Shared builder behind shaped()/shaped_colocated(): per-daemon listen
  /// ports, because co-located daemons can share a host.
  static Topology assemble(const std::string& fe_host, cluster::Port fe_port,
                           const std::vector<std::string>& comm_hosts,
                           const std::vector<cluster::Port>& comm_ports,
                           const std::vector<std::string>& be_hosts,
                           comm::TopologySpec spec,
                           const std::vector<double>& attach_weights);

  std::vector<TopoNode> nodes_;
};

}  // namespace lmon::tbon
