// packet.hpp - TBON wire unit.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/message.hpp"
#include "common/bytes.hpp"

namespace lmon::tbon {

enum class PacketKind : std::uint8_t {
  Hello = 1,      ///< child -> parent: {node_index}
  SubtreeUp,      ///< child -> parent: subtree fully connected
  Down,           ///< root -> leaves: stream broadcast
  Up,             ///< leaf/comm -> root: (filtered) upstream data
  NewStream,      ///< root -> all: create stream {stream, filter_id}
  UpPart,         ///< leaf/comm -> root: partial upstream contribution;
                  ///< the sender stays pending until its final Up
};

/// One TBON frame. Upstream packets carry the set of contributing back-end
/// ranks so filters can track coverage. `session` namespaces the stream:
/// on a shared (multiplexed) overlay each virtual session's streams are
/// announced with its id, so per-session accounting survives aggregation
/// (0 = the infrastructure session).
struct Packet {
  PacketKind kind = PacketKind::Down;
  std::uint32_t session = 0;
  std::uint32_t stream = 0;
  std::uint32_t tag = 0;
  std::uint32_t filter = 0;     ///< NewStream only
  std::int32_t node_index = -1; ///< Hello/SubtreeUp
  std::vector<std::uint32_t> ranks;  ///< Up: contributing BE ranks
  Bytes data;

  [[nodiscard]] cluster::Message encode() const;
  static std::optional<Packet> decode(const cluster::Message& m);
};

}  // namespace lmon::tbon
