#include "tbon/packet.hpp"

namespace lmon::tbon {

cluster::Message Packet::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(session);
  w.u32(stream);
  w.u32(tag);
  w.u32(filter);
  w.i32(node_index);
  w.u32(static_cast<std::uint32_t>(ranks.size()));
  for (std::uint32_t r : ranks) w.u32(r);
  w.blob(data);
  return cluster::Message(std::move(w).take());
}

std::optional<Packet> Packet::decode(const cluster::Message& m) {
  ByteReader r(m.bytes);
  Packet p;
  auto kind = r.u8();
  auto session = r.u32();
  auto stream = r.u32();
  auto tag = r.u32();
  auto filter = r.u32();
  auto node_index = r.i32();
  auto nranks = r.u32();
  if (!kind || !session || !stream || !tag || !filter || !node_index ||
      !nranks) {
    return std::nullopt;
  }
  p.kind = static_cast<PacketKind>(*kind);
  p.session = *session;
  p.stream = *stream;
  p.tag = *tag;
  p.filter = *filter;
  p.node_index = *node_index;
  p.ranks.reserve(*nranks);
  for (std::uint32_t i = 0; i < *nranks; ++i) {
    auto rank = r.u32();
    if (!rank) return std::nullopt;
    p.ranks.push_back(*rank);
  }
  auto data = r.blob();
  if (!data) return std::nullopt;
  p.data = std::move(*data);
  return p;
}

}  // namespace lmon::tbon
