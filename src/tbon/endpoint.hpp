// endpoint.hpp - per-process TBON node runtime.
//
// One TbonEndpoint embeds a process into the overlay tree at a given
// topology index: the tool FE at the root, communication daemons at
// internal positions, tool back ends at the leaves. It handles link
// establishment (children dial parents), the bottom-up "subtree connected"
// wave, stream management, downstream broadcast and upstream filtered
// aggregation with per-(stream, tag) round synchronization.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "cluster/process.hpp"
#include "common/status.hpp"
#include "obs/trace.hpp"
#include "tbon/filter.hpp"
#include "tbon/packet.hpp"
#include "tbon/topology.hpp"

namespace lmon::tbon {

class TbonEndpoint {
 public:
  struct Callbacks {
    /// Fires when this node's subtree is fully connected. At the root this
    /// means the whole overlay network is up.
    std::function<void(Status)> on_tree_ready;
    /// Root: an aggregated upstream wave completed for (stream, tag).
    std::function<void(std::uint32_t stream, std::uint32_t tag,
                       const Bytes& data,
                       const std::vector<std::uint32_t>& ranks)>
        on_up;
    /// Leaves (and comm nodes, for control): downstream packet arrived.
    std::function<void(std::uint32_t stream, std::uint32_t tag,
                       const Bytes& data)>
        on_down;
  };

  TbonEndpoint(cluster::Process& self, Topology topology, int my_index,
               Callbacks callbacks);

  TbonEndpoint(const TbonEndpoint&) = delete;
  TbonEndpoint& operator=(const TbonEndpoint&) = delete;

  /// Wires this endpoint: comm/root nodes listen, non-roots dial their
  /// parent (with retries while the parent boots).
  void start();

  /// Opt into self-healing: on post-ready parent loss this node climbs the
  /// topology's ancestor chain and re-Hellos the nearest reachable live
  /// ancestor; adopters fold the orphan into future rounds and replay
  /// stream announcements. Default off (the pre-heal overlay tears down on
  /// any post-ready link loss). Must be set before start(). Minimal by
  /// design: rounds in flight *across* the failure lose the dead subtree's
  /// contribution (their pending entry is dropped so the round still
  /// completes); only rounds opened after adoption include the orphan.
  void set_heal(bool on) { heal_ = on; }
  [[nodiscard]] bool heal() const { return heal_; }
  /// Current parent topology index (-1 at the root); moves on reparent.
  [[nodiscard]] int parent_index() const { return parent_index_; }
  /// Child topology indices with a live link (adoption view, for tests).
  [[nodiscard]] std::set<int> live_children() const;

  [[nodiscard]] bool is_root() const { return my_index_ == 0; }
  [[nodiscard]] int index() const { return my_index_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }

  // --- root API -------------------------------------------------------------
  /// Creates a stream bound to an upstream filter; announced down-tree.
  /// `session` namespaces the stream on a multiplexed overlay (0 = the
  /// infrastructure session): every node attributes the stream's traffic
  /// to `tbon.s<session>.*` counters alongside the aggregate `tbon.*`.
  std::uint32_t new_stream(std::uint32_t filter_id,
                           std::uint32_t session = 0);
  /// Session a stream was announced under (0 if unknown/infrastructure).
  [[nodiscard]] std::uint32_t session_of(std::uint32_t stream) const;
  /// Broadcasts (stream, tag, data) to every back end.
  void send_down(std::uint32_t stream, std::uint32_t tag, Bytes data);

  // --- leaf API --------------------------------------------------------------
  /// Sends this back end's contribution for (stream, tag) toward the root;
  /// internal nodes aggregate with the stream's filter.
  void send_up(std::uint32_t stream, std::uint32_t tag, Bytes data);
  /// Streams a chunk-granularity partial contribution for (stream, tag).
  /// Parts fold into the parent's round accumulator as they arrive (the
  /// stream's filter must be associative), but the sender stays pending
  /// until its final send_up(), which carries the residue and the rank set.
  /// Lets a back end emit a large aggregate piecewise so no hop ever holds
  /// more than O(chunk) of it.
  void send_up_part(std::uint32_t stream, std::uint32_t tag, Bytes data);

 private:
  struct Round {
    std::set<int> pending_children;  ///< topology child indices outstanding
    /// Running filter fold of everything that has arrived for this round.
    /// Parts and final payloads alike fold in on arrival, so memory here
    /// tracks the *reduced* size, not the sum of raw child payloads.
    Bytes acc;
    bool acc_valid = false;
    std::vector<std::uint32_t> ranks;
  };

  void connect_parent(int attempts_left);
  // --- self-heal (heal_ only) ----------------------------------------------
  /// Post-ready parent loss: start the climb at the dead parent's parent.
  void begin_reparent();
  /// Dial topology index `target`; exhausted retries climb one more level.
  void try_reattach(int target, int attempts_left);
  /// Post-ready child link loss: drop the child from the live set and from
  /// every open round's pending set, completing rounds it was the last
  /// straggler of.
  void on_child_lost(const cluster::ChannelPtr& ch);
  /// Finishes (delivers or relays) the round if nothing is pending.
  void maybe_complete_round(std::uint64_t key);
  void on_packet(const cluster::ChannelPtr& ch, cluster::Message m);
  void handle_hello(const cluster::ChannelPtr& ch, int child_index);
  void handle_subtree_up(int child_index);
  void handle_down(const Packet& p);
  void handle_up(int child_index, Packet p);
  void handle_up_part(int child_index, Packet p);
  [[nodiscard]] Round& round_for(std::uint64_t key);
  /// Folds `data` into the round accumulator with the stream's filter.
  void fold_into_round(Round& round, std::uint32_t stream, Bytes data);
  /// Interior (non-root) nodes relay the accumulator upward as an UpPart
  /// once it outgrows the chunk threshold, keeping per-level memory
  /// O(chunk) while reduction overlaps transport.
  void maybe_flush_part(Round& round, std::uint32_t stream,
                        std::uint32_t tag);
  void maybe_tree_ready();
  void fail(Status st);
  [[nodiscard]] std::uint32_t filter_of(std::uint32_t stream) const;
  /// Counts `tbon.<name>` plus `tbon.s<session>.<name>` when the stream
  /// belongs to a nonzero (virtual) session.
  void count_stream(std::uint32_t stream, const char* name, double v = 1.0);

  cluster::Process& self_;
  Topology topo_;
  int my_index_;
  Callbacks cbs_;
  cluster::ChannelPtr parent_;
  std::map<int, cluster::ChannelPtr> children_;   ///< topo index -> link
  std::vector<int> expected_children_;            ///< children with backends
  /// Children whose subtree still has a live backend path. Mirrors
  /// expected_children_ until heal-mode losses/adoptions diverge it; new
  /// rounds seed their pending set from here so a post-failure reduction
  /// waits for exactly the surviving (possibly adopted) membership.
  std::set<int> expected_live_;
  bool heal_ = false;
  int parent_index_ = -1;  ///< current parent topo index (moves on reparent)
  std::set<int> subtree_up_pending_;
  bool parent_linked_ = false;
  bool ready_fired_ = false;
  std::map<std::uint32_t, std::uint32_t> stream_filters_;
  /// Session each stream was announced under (multiplexed overlays).
  std::map<std::uint32_t, std::uint32_t> stream_sessions_;
  std::uint32_t next_stream_ = 1;
  std::map<std::uint64_t, Round> rounds_;  ///< (stream<<32|tag) -> round
  sim::Time register_busy_until_ = 0;      ///< serialized child registration
  obs::SpanId span_ = obs::kNoSpan;        ///< bootstrap span (start..ready)

  static constexpr int kConnectRetries = 60;
  static constexpr sim::Time kRetryDelay = sim::ms(4);
  /// Per-ancestor dial budget during a heal climb: short, because a dead
  /// ancestor should cost a few retries before the orphan climbs past it.
  static constexpr int kHealConnectRetries = 3;
};

/// True when the subtree rooted at `index` contains a back end.
bool subtree_has_backend(const Topology& topo, int index);

}  // namespace lmon::tbon
