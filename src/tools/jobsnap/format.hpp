// format.hpp - Jobsnap's per-task snapshot record (paper §5.1).
//
// "Jobsnap gathers the distributed state of a parallel application
//  including the task's personality (such as its rank and executable name),
//  state (process state, program counter value and the number of active
//  threads) and various memory statistics ... as well as simple performance
//  metrics including user time, system time and the number of major page
//  faults."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/types.hpp"
#include "common/bytes.hpp"

namespace lmon::tools::jobsnap {

struct TaskSnapshot {
  std::int32_t rank = -1;
  std::string host;
  cluster::Pid pid = cluster::kInvalidPid;
  std::string executable;
  char state = '?';
  std::uint64_t program_counter = 0;
  std::uint32_t num_threads = 0;
  std::uint64_t vm_hwm_kb = 0;
  std::uint64_t vm_lck_kb = 0;
  std::uint64_t utime_ms = 0;
  std::uint64_t stime_ms = 0;
  std::uint64_t maj_faults = 0;

  void encode(ByteWriter& w) const;
  static std::optional<TaskSnapshot> decode(ByteReader& r);

  /// One line of the report, exactly the "one line info per task" the
  /// master daemon emits.
  [[nodiscard]] std::string format_line() const;
};

Bytes encode_snapshots(const std::vector<TaskSnapshot>& snaps);
std::optional<std::vector<TaskSnapshot>> decode_snapshots(const Bytes& data);

/// Header line for the report table.
std::string report_header();

}  // namespace lmon::tools::jobsnap
