// jobsnap_fe.hpp - Jobsnap front end (paper Fig. 4, left column).
//
// "...init -> createFEBESession -> attachAndSpawnDaemons -> (returns) ->
//  blocks until 'work-done' -> detach -> finalize."
//
// The paper built this tool in ~100 lines of front-end code on top of
// LaunchMON; the structure below mirrors that brevity.
#pragma once

#include <memory>
#include <string>

#include "cluster/process.hpp"
#include "core/fe_api.hpp"

namespace lmon::tools::jobsnap {

/// Observable outcome, owned by the caller (test/bench/example).
struct JobsnapOutcome {
  bool done = false;
  Status status;
  std::string report;          ///< the per-task table the master produced
  std::uint32_t tasks = 0;
  sim::Time t_start = 0;       ///< init called
  sim::Time t_spawned = 0;     ///< attachAndSpawnDaemons returned
  sim::Time t_done = 0;        ///< work-done received, after detach
};

class JobsnapFe : public cluster::Program {
 public:
  /// Snapshots the job whose RM launcher is `launcher_pid`.
  JobsnapFe(cluster::Pid launcher_pid, JobsnapOutcome* out)
      : launcher_pid_(launcher_pid), out_(out) {}

  [[nodiscard]] std::string_view name() const override {
    return "jobsnap_fe";
  }
  void on_start(cluster::Process& self) override;

 private:
  void finish(cluster::Process& self, Status st);

  cluster::Pid launcher_pid_;
  JobsnapOutcome* out_;
  std::unique_ptr<core::FrontEnd> fe_;
  int sid_ = -1;
};

}  // namespace lmon::tools::jobsnap
