// jobsnap_tbon.hpp - the TBON-based Jobsnap the paper anticipates (§5.1):
//
// "In addition, we are considering a TBON architecture that would reduce
//  the impact of collecting and printing information from each back-end
//  daemon."
//
// Instead of the flat ICCL gather (every snapshot byte converges on the
// master daemon, which formats the whole report), back ends join a TBON
// whose upstream filter merges and rank-sorts snapshot batches at every
// interior hop, so no single process ever materializes more than its
// subtree's share until the front end.
#pragma once

#include <memory>

#include "cluster/process.hpp"
#include "core/be_api.hpp"
#include "core/fe_api.hpp"
#include "tbon/endpoint.hpp"
#include "tools/jobsnap/format.hpp"

namespace lmon::tools::jobsnap {

/// TBON merge filter id for snapshot batches.
inline constexpr std::uint32_t kFilterSnapshotMerge =
    tbon::kFilterUserBase + 1;
/// Stream tag for a snapshot sweep.
inline constexpr std::uint32_t kTagSnap = 1;

void register_jobsnap_filter();

/// Back-end daemon: BE API for launch/RPDTAB, TBON (topology piggybacked on
/// the handshake) for collection.
class JobsnapTbonBe : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "jobsnap_tbe";
  }
  void on_start(cluster::Process& self) override;

  static void install(cluster::Machine& machine);

 private:
  void on_snap_request(cluster::Process& self, std::uint32_t stream,
                       std::uint32_t tag);

  std::unique_ptr<core::BackEnd> be_;
  std::unique_ptr<tbon::TbonEndpoint> tbon_;
};

/// Outcome mirrors the classic JobsnapOutcome so benches can compare.
struct JobsnapTbonOutcome {
  bool done = false;
  Status status;
  std::string report;
  std::uint32_t tasks = 0;
  sim::Time t_start = 0;
  sim::Time t_spawned = 0;   ///< attachAndSpawn returned
  sim::Time t_snap_sent = 0; ///< TBON ready, snapshot sweep requested
  sim::Time t_collected = 0; ///< merged snapshots at the FE
};

class JobsnapTbonFe : public cluster::Program {
 public:
  JobsnapTbonFe(cluster::Pid launcher_pid, JobsnapTbonOutcome* out)
      : launcher_pid_(launcher_pid), out_(out) {}

  [[nodiscard]] std::string_view name() const override {
    return "jobsnap_tfe";
  }
  void on_start(cluster::Process& self) override;

 private:
  void finish(cluster::Process& self, Status st);

  cluster::Pid launcher_pid_;
  JobsnapTbonOutcome* out_;
  std::unique_ptr<core::FrontEnd> fe_;
  std::unique_ptr<tbon::TbonEndpoint> root_;
  tbon::Topology topo_;
  int sid_ = -1;
};

}  // namespace lmon::tools::jobsnap
