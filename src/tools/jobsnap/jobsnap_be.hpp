// jobsnap_be.hpp - Jobsnap back-end daemon (paper Fig. 4, right column).
//
// Lifecycle: LMON_be_init -> handshake -> ready -> collect local /proc
// snapshots for the tasks named in the RPDTAB -> ICCL gather to the master
// -> master formats one line per task and sends the "work-done" message
// (with the report) to the front end -> finalize.
#pragma once

#include <memory>

#include "cluster/process.hpp"
#include "core/be_api.hpp"
#include "tools/jobsnap/format.hpp"

namespace lmon::tools::jobsnap {

class JobsnapBe : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "jobsnap_be";
  }
  void on_start(cluster::Process& self) override;

  static void install(cluster::Machine& machine);

 private:
  void collect_and_gather(cluster::Process& self);

  std::unique_ptr<core::BackEnd> be_;
};

}  // namespace lmon::tools::jobsnap
