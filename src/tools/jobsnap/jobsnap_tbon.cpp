#include "tools/jobsnap/jobsnap_tbon.hpp"

#include <algorithm>

#include "cluster/machine.hpp"
#include "tbon/filter.hpp"
#include "tbon/topology.hpp"

namespace lmon::tools::jobsnap {

void register_jobsnap_filter() {
  tbon::FilterRegistry::instance().register_filter(
      kFilterSnapshotMerge, [](const std::vector<Bytes>& inputs) {
        // Inputs are concat frames of snapshot batches; merge into one
        // rank-sorted batch per hop (the "reduction" of the report).
        std::vector<TaskSnapshot> merged;
        for (const auto& frame : inputs) {
          for (const auto& batch : tbon::split_concat(frame)) {
            auto snaps = decode_snapshots(batch);
            if (!snaps) continue;
            merged.insert(merged.end(), snaps->begin(), snaps->end());
          }
        }
        std::sort(merged.begin(), merged.end(),
                  [](const TaskSnapshot& a, const TaskSnapshot& b) {
                    return a.rank < b.rank;
                  });
        return tbon::concat_payloads(
            {tbon::wrap_leaf_payload(encode_snapshots(merged))});
      });
}

// --- back end --------------------------------------------------------------

void JobsnapTbonBe::on_start(cluster::Process& self) {
  register_jobsnap_filter();
  be_ = std::make_unique<core::BackEnd>(self);
  core::BackEnd::Callbacks cbs;
  cbs.on_init = [this, &self](const core::Rpdtab&, const Bytes& usrdata,
                              std::function<void(Status)> done) {
    auto topo = tbon::Topology::unpack(usrdata);
    if (!topo || !topo->valid()) {
      done(Status(Rc::Ebdarg, "no TBON topology in handshake"));
      return;
    }
    const int index = topo->index_of_backend(static_cast<int>(be_->rank()));
    if (index < 0) {
      done(Status(Rc::Ebdarg, "daemon missing from topology"));
      return;
    }
    tbon::TbonEndpoint::Callbacks tcbs;
    tcbs.on_down = [this, &self](std::uint32_t stream, std::uint32_t tag,
                                 const Bytes&) {
      if (tag == kTagSnap) on_snap_request(self, stream, tag);
    };
    tbon_ = std::make_unique<tbon::TbonEndpoint>(self, std::move(*topo),
                                                 index, std::move(tcbs));
    tbon_->start();
    done(Status::ok());
  };
  if (!be_->init(std::move(cbs)).is_ok()) self.exit(1);
}

void JobsnapTbonBe::on_snap_request(cluster::Process& self,
                                    std::uint32_t stream, std::uint32_t tag) {
  const auto locals = be_->my_entries();
  const sim::Time cost = static_cast<sim::Time>(locals.size()) *
                         self.machine().costs().proc_read_cost;
  self.post(cost, [this, &self, locals, stream, tag] {
    // Snapshot batches stream upward in chunk-sized partial aggregates
    // (the merge filter is associative), so neither this daemon nor any
    // interior hop stages more than O(chunk) of the report at once.
    const std::size_t chunk = self.machine().costs().iccl_rndv_chunk_bytes;
    std::vector<TaskSnapshot> snaps;
    snaps.reserve(locals.size());
    for (const auto& entry : locals) {
      cluster::Process* task = self.machine().find_process(entry.pid);
      TaskSnapshot snap;
      snap.rank = entry.rank;
      snap.host = entry.host;
      snap.pid = entry.pid;
      snap.executable = entry.executable;
      if (task != nullptr && task->state() != cluster::ProcState::Exited) {
        const auto& st = task->stats();
        snap.state = st.state;
        snap.program_counter = st.program_counter;
        snap.num_threads = st.num_threads;
        snap.vm_hwm_kb = st.vm_hwm_kb;
        snap.vm_lck_kb = st.vm_lck_kb;
        snap.utime_ms = st.utime_ms;
        snap.stime_ms = st.stime_ms;
        snap.maj_faults = st.maj_faults;
      } else {
        snap.state = 'Z';
      }
      snaps.push_back(std::move(snap));
      if (Bytes batch = encode_snapshots(snaps); batch.size() >= chunk) {
        tbon_->send_up_part(stream, tag, std::move(batch));
        snaps.clear();
      }
    }
    tbon_->send_up(stream, tag, encode_snapshots(snaps));
  });
}

void JobsnapTbonBe::install(cluster::Machine& machine) {
  register_jobsnap_filter();
  cluster::ProgramImage image;
  image.image_mb = 3.0;  // slightly larger than the flat BE: links the TBON
  image.factory = [](const std::vector<std::string>&) {
    return std::make_unique<JobsnapTbonBe>();
  };
  machine.install_program("jobsnap_tbe", std::move(image));
}

// --- front end ----------------------------------------------------------------

void JobsnapTbonFe::on_start(cluster::Process& self) {
  register_jobsnap_filter();
  out_->t_start = self.sim().now();
  fe_ = std::make_unique<core::FrontEnd>(self);
  Status st = fe_->init();
  if (!st.is_ok()) {
    finish(self, st);
    return;
  }
  sid_ = fe_->create_session().value;

  core::FrontEnd::SpawnConfig cfg;
  cfg.daemon_exe = "jobsnap_tbe";
  cfg.fe_data_provider = [this, &self]() -> Bytes {
    const core::Rpdtab* pt = fe_->proctable(sid_);
    if (pt == nullptr) return {};
    topo_ = tbon::Topology::one_deep(self.node().hostname(),
                                     cluster::kTbonBasePort + 16,
                                     pt->hosts());
    tbon::TbonEndpoint::Callbacks cbs;
    cbs.on_tree_ready = [this, &self](Status tst) {
      if (!tst.is_ok()) {
        finish(self, tst);
        return;
      }
      out_->t_snap_sent = self.sim().now();
      const std::uint32_t stream = root_->new_stream(kFilterSnapshotMerge);
      root_->send_down(stream, kTagSnap, {});
    };
    cbs.on_up = [this, &self](std::uint32_t, std::uint32_t tag,
                              const Bytes& data,
                              const std::vector<std::uint32_t>&) {
      if (tag != kTagSnap) return;
      std::vector<TaskSnapshot> all;
      for (const auto& batch : tbon::split_concat(data)) {
        auto snaps = decode_snapshots(batch);
        if (snaps) all.insert(all.end(), snaps->begin(), snaps->end());
      }
      out_->t_collected = self.sim().now();
      out_->tasks = static_cast<std::uint32_t>(all.size());
      std::string report = report_header() + "\n";
      for (const auto& s : all) report += s.format_line() + "\n";
      out_->report = std::move(report);
      fe_->detach(sid_, [this, &self](Status dst) { finish(self, dst); });
    };
    root_ = std::make_unique<tbon::TbonEndpoint>(self, topo_, 0,
                                                 std::move(cbs));
    root_->start();
    return topo_.pack();
  };

  fe_->attach_and_spawn(sid_, launcher_pid_, cfg, [this, &self](Status ast) {
    out_->t_spawned = self.sim().now();
    if (!ast.is_ok()) finish(self, ast);
  });
}

void JobsnapTbonFe::finish(cluster::Process& self, Status st) {
  if (out_->done) return;
  out_->done = true;
  out_->status = st;
  self.exit(st.is_ok() ? 0 : 1);
}

}  // namespace lmon::tools::jobsnap
