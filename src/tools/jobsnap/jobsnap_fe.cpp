#include "tools/jobsnap/jobsnap_fe.hpp"

#include "tools/jobsnap/jobsnap_be.hpp"

namespace lmon::tools::jobsnap {

void JobsnapFe::on_start(cluster::Process& self) {
  out_->t_start = self.sim().now();
  fe_ = std::make_unique<core::FrontEnd>(self);
  Status st = fe_->init();
  if (!st.is_ok()) {
    finish(self, st);
    return;
  }
  auto sid = fe_->create_session();
  if (!sid.is_ok()) {
    finish(self, sid.status);
    return;
  }
  sid_ = sid.value;

  // The master daemon's "work-done" message carries the merged report.
  fe_->set_be_usrdata_handler(sid_, [this, &self](const Bytes& data) {
    ByteReader r(data);
    auto tag = r.str();
    auto tasks = r.u32();
    auto report = r.str();
    if (!tag || *tag != "work-done" || !tasks || !report) {
      finish(self, Status(Rc::Esubcom, "malformed work-done message"));
      return;
    }
    out_->tasks = *tasks;
    out_->report = std::move(*report);
    fe_->detach(sid_, [this, &self](Status dst) { finish(self, dst); });
  });

  core::FrontEnd::SpawnConfig cfg;
  cfg.daemon_exe = "jobsnap_be";
  fe_->attach_and_spawn(sid_, launcher_pid_, cfg, [this, &self](Status ast) {
    out_->t_spawned = self.sim().now();
    if (!ast.is_ok()) finish(self, ast);
    // Otherwise block until work-done (the usrdata handler above fires).
  });
}

void JobsnapFe::finish(cluster::Process& self, Status st) {
  if (out_->done) return;
  out_->done = true;
  out_->status = st;
  out_->t_done = self.sim().now();
  self.exit(st.is_ok() ? 0 : 1);
}

}  // namespace lmon::tools::jobsnap
