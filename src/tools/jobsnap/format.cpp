#include "tools/jobsnap/format.hpp"

#include <cstdio>

namespace lmon::tools::jobsnap {

void TaskSnapshot::encode(ByteWriter& w) const {
  w.i32(rank);
  w.str(host);
  w.i64(pid);
  w.str(executable);
  w.u8(static_cast<std::uint8_t>(state));
  w.u64(program_counter);
  w.u32(num_threads);
  w.u64(vm_hwm_kb);
  w.u64(vm_lck_kb);
  w.u64(utime_ms);
  w.u64(stime_ms);
  w.u64(maj_faults);
}

std::optional<TaskSnapshot> TaskSnapshot::decode(ByteReader& r) {
  TaskSnapshot s;
  auto rank = r.i32();
  auto host = r.str();
  auto pid = r.i64();
  auto exe = r.str();
  auto state = r.u8();
  auto pc = r.u64();
  auto threads = r.u32();
  auto hwm = r.u64();
  auto lck = r.u64();
  auto ut = r.u64();
  auto st = r.u64();
  auto mf = r.u64();
  if (!rank || !host || !pid || !exe || !state || !pc || !threads || !hwm ||
      !lck || !ut || !st || !mf) {
    return std::nullopt;
  }
  s.rank = *rank;
  s.host = std::move(*host);
  s.pid = *pid;
  s.executable = std::move(*exe);
  s.state = static_cast<char>(*state);
  s.program_counter = *pc;
  s.num_threads = *threads;
  s.vm_hwm_kb = *hwm;
  s.vm_lck_kb = *lck;
  s.utime_ms = *ut;
  s.stime_ms = *st;
  s.maj_faults = *mf;
  return s;
}

std::string TaskSnapshot::format_line() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%6d %-12s %8lld %-10s %c 0x%08llx %3u %10llu %8llu %8llu "
                "%8llu %6llu",
                rank, host.c_str(), static_cast<long long>(pid),
                executable.c_str(), state,
                static_cast<unsigned long long>(program_counter), num_threads,
                static_cast<unsigned long long>(vm_hwm_kb),
                static_cast<unsigned long long>(vm_lck_kb),
                static_cast<unsigned long long>(utime_ms),
                static_cast<unsigned long long>(stime_ms),
                static_cast<unsigned long long>(maj_faults));
  return buf;
}

std::string report_header() {
  return "  RANK HOST              PID EXE        S PC          THR   "
         "VmHWM(kB) VmLck(kB) utime(ms) stime(ms) majflt";
}

Bytes encode_snapshots(const std::vector<TaskSnapshot>& snaps) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(snaps.size()));
  for (const auto& s : snaps) s.encode(w);
  return std::move(w).take();
}

std::optional<std::vector<TaskSnapshot>> decode_snapshots(const Bytes& data) {
  ByteReader r(data);
  auto count = r.u32();
  if (!count) return std::nullopt;
  std::vector<TaskSnapshot> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto s = TaskSnapshot::decode(r);
    if (!s) return std::nullopt;
    out.push_back(std::move(*s));
  }
  return out;
}

}  // namespace lmon::tools::jobsnap
