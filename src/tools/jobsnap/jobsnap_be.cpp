#include "tools/jobsnap/jobsnap_be.hpp"

#include <algorithm>

#include "cluster/machine.hpp"

namespace lmon::tools::jobsnap {

void JobsnapBe::on_start(cluster::Process& self) {
  be_ = std::make_unique<core::BackEnd>(self);
  core::BackEnd::Callbacks cbs;
  cbs.on_init = [](const core::Rpdtab&, const Bytes&,
                   std::function<void(Status)> done) { done(Status::ok()); };
  cbs.on_ready = [this, &self](Status st) {
    if (!st.is_ok()) {
      self.exit(1);
      return;
    }
    collect_and_gather(self);
  };
  const Status st = be_->init(std::move(cbs));
  if (!st.is_ok()) self.exit(1);
}

void JobsnapBe::collect_and_gather(cluster::Process& self) {
  // Snapshot each co-located task through the node-local /proc interface;
  // each read opens and parses several /proc files (proc_read_cost).
  const auto locals = be_->my_entries();
  const sim::Time per_task = self.machine().costs().proc_read_cost;
  const sim::Time collect_cost =
      static_cast<sim::Time>(locals.size()) * per_task;

  self.post(collect_cost, [this, &self, locals] {
    std::vector<TaskSnapshot> snaps;
    snaps.reserve(locals.size());
    for (const auto& entry : locals) {
      cluster::Process* task = self.machine().find_process(entry.pid);
      TaskSnapshot snap;
      snap.rank = entry.rank;
      snap.host = entry.host;
      snap.pid = entry.pid;
      snap.executable = entry.executable;
      if (task != nullptr && task->state() != cluster::ProcState::Exited) {
        const auto& st = task->stats();
        snap.state = st.state;
        snap.program_counter = st.program_counter;
        snap.num_threads = st.num_threads;
        snap.vm_hwm_kb = st.vm_hwm_kb;
        snap.vm_lck_kb = st.vm_lck_kb;
        snap.utime_ms = st.utime_ms;
        snap.stime_ms = st.stime_ms;
        snap.maj_faults = st.maj_faults;
      } else {
        snap.state = 'Z';
      }
      snaps.push_back(std::move(snap));
    }

    be_->gather(
        encode_snapshots(snaps),
        [this, &self](
            std::vector<std::pair<std::uint32_t, Bytes>> contributions) {
          // Master: merge, sort by rank, format the report, send work-done.
          std::vector<TaskSnapshot> all;
          for (const auto& [rank, data] : contributions) {
            auto part = decode_snapshots(data);
            if (!part) continue;
            all.insert(all.end(), part->begin(), part->end());
          }
          std::sort(all.begin(), all.end(),
                    [](const TaskSnapshot& a, const TaskSnapshot& b) {
                      return a.rank < b.rank;
                    });
          std::string report = report_header() + "\n";
          for (const auto& s : all) report += s.format_line() + "\n";

          ByteWriter w;
          w.str("work-done");
          w.u32(static_cast<std::uint32_t>(all.size()));
          w.str(report);
          (void)be_->send_usrdata_fe(std::move(w).take());
        });
  });
}

void JobsnapBe::install(cluster::Machine& machine) {
  cluster::ProgramImage image;
  // "lightweight back-end daemons" - small image.
  image.image_mb = 2.5;
  image.factory = [](const std::vector<std::string>&) {
    return std::make_unique<JobsnapBe>();
  };
  machine.install_program("jobsnap_be", std::move(image));
}

}  // namespace lmon::tools::jobsnap
