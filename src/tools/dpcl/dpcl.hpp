// dpcl.hpp - DPCL-like persistent instrumentation daemons (paper §2, §5.3).
//
// The baseline O|SS builds on: a super-daemon pre-installed on every node
// (running as root - the deployment/security problem the paper highlights),
// offering process attach + *full binary parse* + symbol reads. The full
// parse of the target executable is the DPCL behaviour responsible for
// Table 1's ~34 s APAI access time: O|SS "treats the RM process in the same
// way as the target application, including parsing its binary fully".
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "cluster/machine.hpp"
#include "cluster/process.hpp"
#include "common/bytes.hpp"

namespace lmon::tools::dpcl {

inline constexpr cluster::Port kDpclPort = 7777;

enum class MsgType : std::uint32_t {
  AttachParseReq = 300,
  AttachParseResp,
  ReadSymReq,
  ReadSymResp,
  InstrumentReq,
  InstrumentResp,
};

struct AttachParseReq {
  cluster::Pid pid = cluster::kInvalidPid;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<AttachParseReq> decode(const cluster::Message& m);
};
struct AttachParseResp {
  bool ok = false;
  std::string error;
  double parsed_mb = 0;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<AttachParseResp> decode(const cluster::Message& m);
};
struct ReadSymReq {
  cluster::Pid pid = cluster::kInvalidPid;
  std::string symbol;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<ReadSymReq> decode(const cluster::Message& m);
};
struct ReadSymResp {
  bool ok = false;
  std::string error;
  Bytes data;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<ReadSymResp> decode(const cluster::Message& m);
};
struct InstrumentReq {
  cluster::Pid pid = cluster::kInvalidPid;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<InstrumentReq> decode(const cluster::Message& m);
};
struct InstrumentResp {
  bool ok = false;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<InstrumentResp> decode(const cluster::Message& m);
};

/// The persistent root daemon. Attach+parse pays the full binary-parse cost
/// of the target's image before anything else works.
class SuperDaemon : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "dpcld"; }
  void on_start(cluster::Process& self) override;
  void on_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                  cluster::Message msg) override;

 private:
  std::set<cluster::Pid> parsed_;  ///< targets already attach-parsed
};

/// Installs the super daemon on every node (the "preinstalled root
/// daemons" deployment the paper criticizes).
Status install(cluster::Machine& machine);

/// Client session to one node's super daemon, usable from any Program.
class Client {
 public:
  using AttachCb = std::function<void(Status)>;
  using ReadCb = std::function<void(Status, Bytes)>;

  /// Connects to the super daemon on `host`; `cb` fires when usable.
  static void connect(cluster::Process& self, const std::string& host,
                      std::function<void(Status, std::shared_ptr<Client>)> cb);

  void attach_parse(cluster::Pid pid, AttachCb cb);
  void read_symbol(cluster::Pid pid, const std::string& symbol, ReadCb cb);
  void instrument(cluster::Pid pid, AttachCb cb);
  void close();

 private:
  Client(cluster::Process& self, cluster::ChannelPtr ch);
  void on_message(const cluster::ChannelPtr& ch, cluster::Message m);

  cluster::Process& self_;
  cluster::ChannelPtr ch_;
  std::vector<std::function<void(cluster::Message)>> pending_;
};

}  // namespace lmon::tools::dpcl
