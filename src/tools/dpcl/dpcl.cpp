#include "tools/dpcl/dpcl.hpp"

#include "simkernel/log.hpp"

namespace lmon::tools::dpcl {

namespace {

ByteWriter begin(MsgType t) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(t));
  return w;
}

std::optional<ByteReader> open(const cluster::Message& m, MsgType expect) {
  ByteReader r(m.bytes);
  auto t = r.u32();
  if (!t || *t != static_cast<std::uint32_t>(expect)) return std::nullopt;
  return r;
}

std::optional<MsgType> peek(const cluster::Message& m) {
  ByteReader r(m.bytes);
  auto t = r.u32();
  if (!t || *t < static_cast<std::uint32_t>(MsgType::AttachParseReq) ||
      *t > static_cast<std::uint32_t>(MsgType::InstrumentResp)) {
    return std::nullopt;
  }
  return static_cast<MsgType>(*t);
}

}  // namespace

cluster::Message AttachParseReq::encode() const {
  ByteWriter w = begin(MsgType::AttachParseReq);
  w.i64(pid);
  return cluster::Message(std::move(w).take());
}
std::optional<AttachParseReq> AttachParseReq::decode(
    const cluster::Message& m) {
  auto r = open(m, MsgType::AttachParseReq);
  if (!r) return std::nullopt;
  auto pid = r->i64();
  if (!pid) return std::nullopt;
  return AttachParseReq{*pid};
}

cluster::Message AttachParseResp::encode() const {
  ByteWriter w = begin(MsgType::AttachParseResp);
  w.boolean(ok);
  w.str(error);
  w.f64(parsed_mb);
  return cluster::Message(std::move(w).take());
}
std::optional<AttachParseResp> AttachParseResp::decode(
    const cluster::Message& m) {
  auto r = open(m, MsgType::AttachParseResp);
  if (!r) return std::nullopt;
  auto ok_f = r->boolean();
  auto err = r->str();
  auto mb = r->f64();
  if (!ok_f || !err || !mb) return std::nullopt;
  return AttachParseResp{*ok_f, std::move(*err), *mb};
}

cluster::Message ReadSymReq::encode() const {
  ByteWriter w = begin(MsgType::ReadSymReq);
  w.i64(pid);
  w.str(symbol);
  return cluster::Message(std::move(w).take());
}
std::optional<ReadSymReq> ReadSymReq::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::ReadSymReq);
  if (!r) return std::nullopt;
  auto pid = r->i64();
  auto sym = r->str();
  if (!pid || !sym) return std::nullopt;
  return ReadSymReq{*pid, std::move(*sym)};
}

cluster::Message ReadSymResp::encode() const {
  ByteWriter w = begin(MsgType::ReadSymResp);
  w.boolean(ok);
  w.str(error);
  w.blob(data);
  return cluster::Message(std::move(w).take());
}
std::optional<ReadSymResp> ReadSymResp::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::ReadSymResp);
  if (!r) return std::nullopt;
  auto ok_f = r->boolean();
  auto err = r->str();
  auto data = r->blob();
  if (!ok_f || !err || !data) return std::nullopt;
  return ReadSymResp{*ok_f, std::move(*err), std::move(*data)};
}

cluster::Message InstrumentReq::encode() const {
  ByteWriter w = begin(MsgType::InstrumentReq);
  w.i64(pid);
  return cluster::Message(std::move(w).take());
}
std::optional<InstrumentReq> InstrumentReq::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::InstrumentReq);
  if (!r) return std::nullopt;
  auto pid = r->i64();
  if (!pid) return std::nullopt;
  return InstrumentReq{*pid};
}

cluster::Message InstrumentResp::encode() const {
  ByteWriter w = begin(MsgType::InstrumentResp);
  w.boolean(ok);
  return cluster::Message(std::move(w).take());
}
std::optional<InstrumentResp> InstrumentResp::decode(
    const cluster::Message& m) {
  auto r = open(m, MsgType::InstrumentResp);
  if (!r) return std::nullopt;
  auto ok_f = r->boolean();
  if (!ok_f) return std::nullopt;
  return InstrumentResp{*ok_f};
}

// --- super daemon --------------------------------------------------------------

void SuperDaemon::on_start(cluster::Process& self) {
  (void)self.listen(kDpclPort);
}

void SuperDaemon::on_message(cluster::Process& self,
                             const cluster::ChannelPtr& ch,
                             cluster::Message msg) {
  auto type = peek(msg);
  if (!type) return;
  const auto& costs = self.machine().costs();

  switch (*type) {
    case MsgType::AttachParseReq: {
      auto req = AttachParseReq::decode(msg);
      if (!req) return;
      cluster::Process* target = self.node().find(req->pid);
      if (target == nullptr ||
          target->state() == cluster::ProcState::Exited) {
        AttachParseResp resp;
        resp.ok = false;
        resp.error = "no such process";
        self.send(ch, resp.encode());
        return;
      }
      const double mb = target->options().image_mb;
      sim::Time cost = costs.dpcl_session_setup;
      if (parsed_.count(req->pid) == 0) {
        // THE DPCL cost: parse the target's binary image completely.
        cost += static_cast<sim::Time>(
            mb * static_cast<double>(costs.dpcl_parse_per_mb));
      }
      self.post(cost, [this, &self, ch, pid = req->pid, mb] {
        parsed_.insert(pid);
        AttachParseResp resp;
        resp.ok = true;
        resp.parsed_mb = mb;
        self.send(ch, resp.encode());
      });
      return;
    }
    case MsgType::ReadSymReq: {
      auto req = ReadSymReq::decode(msg);
      if (!req) return;
      self.post(costs.mem_read_base, [this, &self, ch, req = *req] {
        ReadSymResp resp;
        cluster::Process* target = self.node().find(req.pid);
        if (target == nullptr || parsed_.count(req.pid) == 0) {
          resp.ok = false;
          resp.error = parsed_.count(req.pid) == 0 ? "not attached" : "gone";
        } else {
          const Bytes* sym = target->symbols().find(req.symbol);
          if (sym == nullptr) {
            resp.ok = false;
            resp.error = "no such symbol";
          } else {
            resp.ok = true;
            resp.data = *sym;
          }
        }
        self.send(ch, resp.encode());
      });
      return;
    }
    case MsgType::InstrumentReq: {
      auto req = InstrumentReq::decode(msg);
      if (!req) return;
      // Point-probe insertion: modest per-call cost.
      self.post(sim::ms(6), [&self, ch] {
        InstrumentResp resp;
        resp.ok = true;
        self.send(ch, resp.encode());
      });
      return;
    }
    default:
      return;
  }
}

Status install(cluster::Machine& machine) {
  for (int i = 0; i < machine.num_nodes(); ++i) {
    cluster::SpawnOptions opts;
    opts.executable = "dpcld";
    opts.image_mb = 14.0;
    auto r = machine.node(i).spawn(std::make_unique<SuperDaemon>(),
                                   std::move(opts));
    if (!r.is_ok()) return r.status;
  }
  return Status::ok();
}

// --- client -------------------------------------------------------------------------

Client::Client(cluster::Process& self, cluster::ChannelPtr ch)
    : self_(self), ch_(std::move(ch)) {}

void Client::connect(
    cluster::Process& self, const std::string& host,
    std::function<void(Status, std::shared_ptr<Client>)> cb) {
  self.connect(host, kDpclPort,
               [&self, cb](Status st, cluster::ChannelPtr ch) {
                 if (!st.is_ok()) {
                   cb(st, nullptr);
                   return;
                 }
                 auto client =
                     std::shared_ptr<Client>(new Client(self, ch));
                 self.set_channel_handler(
                     ch,
                     [client](const cluster::ChannelPtr& c,
                              cluster::Message m) {
                       client->on_message(c, std::move(m));
                     },
                     nullptr);
                 cb(Status::ok(), client);
               });
}

void Client::on_message(const cluster::ChannelPtr&, cluster::Message m) {
  if (pending_.empty()) return;
  auto handler = std::move(pending_.front());
  pending_.erase(pending_.begin());
  handler(std::move(m));
}

void Client::attach_parse(cluster::Pid pid, AttachCb cb) {
  pending_.push_back([cb](cluster::Message m) {
    auto resp = AttachParseResp::decode(m);
    if (!resp || !resp->ok) {
      cb(Status(Rc::Esubcom, resp ? resp->error : "protocol error"));
      return;
    }
    cb(Status::ok());
  });
  self_.send(ch_, AttachParseReq{pid}.encode());
}

void Client::read_symbol(cluster::Pid pid, const std::string& symbol,
                         ReadCb cb) {
  pending_.push_back([cb](cluster::Message m) {
    auto resp = ReadSymResp::decode(m);
    if (!resp || !resp->ok) {
      cb(Status(Rc::Esubcom, resp ? resp->error : "protocol error"), {});
      return;
    }
    cb(Status::ok(), std::move(resp->data));
  });
  self_.send(ch_, ReadSymReq{pid, symbol}.encode());
}

void Client::instrument(cluster::Pid pid, AttachCb cb) {
  pending_.push_back([cb](cluster::Message m) {
    auto resp = InstrumentResp::decode(m);
    cb(resp && resp->ok ? Status::ok()
                        : Status(Rc::Esubcom, "instrument failed"));
  });
  self_.send(ch_, InstrumentReq{pid}.encode());
}

void Client::close() {
  if (ch_ != nullptr) {
    self_.close_channel(ch_);
    ch_ = nullptr;
  }
}

}  // namespace lmon::tools::dpcl
