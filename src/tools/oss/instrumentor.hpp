// instrumentor.hpp - Open|SpeedShop's Instrumentor abstraction (paper §5.3).
//
// "We integrated LaunchMON into O|SS by replacing its central Instrumentor
//  class, which encapsulates all interactions between the tool and the
//  target application."
//
// Two implementations of APAI acquisition, the Table 1 comparison:
//  * DpclInstrumentor: treats the RM launcher like an application - full
//    binary parse through the DPCL super daemon, then symbol reads.
//    ~constant ~34 s (dominated by parsing the ~110 MB launcher image).
//  * LmonInstrumentor: attachAndSpawn through LaunchMON, which reads the
//    APAI "efficiently, unlike the general purpose remote instrumentation
//    infrastructure of DPCL". ~constant well under a second.
#pragma once

#include <functional>
#include <memory>

#include "cluster/process.hpp"
#include "core/be_api.hpp"
#include "core/fe_api.hpp"
#include "core/rpdtab.hpp"

namespace lmon::tools::oss {

struct ApaiResult {
  Status status;
  core::Rpdtab table;
  sim::Time elapsed = 0;  ///< experiment start -> APAI fully acquired
};

class Instrumentor {
 public:
  virtual ~Instrumentor() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Acquires the APAI information (the RPDTAB) for the job whose RM
  /// launcher is `launcher_pid`.
  virtual void acquire(cluster::Process& fe, cluster::Pid launcher_pid,
                       std::function<void(ApaiResult)> cb) = 0;
};

/// DPCL-based baseline. Requires dpcl::install() on the machine.
class DpclInstrumentor final : public Instrumentor {
 public:
  [[nodiscard]] std::string_view name() const override { return "dpcl"; }
  void acquire(cluster::Process& fe, cluster::Pid launcher_pid,
               std::function<void(ApaiResult)> cb) override;
};

/// LaunchMON-based replacement. Spawns `daemon_exe` (default "oss_be")
/// co-located daemons as part of acquisition, like the integrated O|SS.
class LmonInstrumentor final : public Instrumentor {
 public:
  explicit LmonInstrumentor(std::string daemon_exe = "oss_be")
      : daemon_exe_(std::move(daemon_exe)) {}
  [[nodiscard]] std::string_view name() const override { return "launchmon"; }
  void acquire(cluster::Process& fe, cluster::Pid launcher_pid,
               std::function<void(ApaiResult)> cb) override;

 private:
  std::string daemon_exe_;
  std::unique_ptr<core::FrontEnd> fe_api_;
};

/// O|SS back-end daemon: BE API + local task instrumentation via the
/// (augmented) DPCL daemon startup routines the paper describes.
class OssBe : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "oss_be"; }
  void on_start(cluster::Process& self) override;

  static void install(cluster::Machine& machine);

 private:
  std::unique_ptr<core::BackEnd> be_;
};

}  // namespace lmon::tools::oss
