#include "tools/oss/instrumentor.hpp"

#include "cluster/machine.hpp"
#include "rm/apai.hpp"
#include "tools/dpcl/dpcl.hpp"

namespace lmon::tools::oss {

void DpclInstrumentor::acquire(cluster::Process& fe,
                               cluster::Pid launcher_pid,
                               std::function<void(ApaiResult)> cb) {
  const sim::Time start = fe.sim().now();
  // The launcher runs on the front-end node; talk to the local super
  // daemon, attach to the launcher *as if it were an application* - full
  // binary parse included - then read the MPIR proctable.
  dpcl::Client::connect(
      fe, fe.node().hostname(),
      [&fe, launcher_pid, cb, start](Status st,
                                     std::shared_ptr<dpcl::Client> client) {
        if (!st.is_ok()) {
          cb(ApaiResult{st, {}, fe.sim().now() - start});
          return;
        }
        client->attach_parse(launcher_pid, [&fe, launcher_pid, cb, start,
                                            client](Status ast) {
          if (!ast.is_ok()) {
            cb(ApaiResult{ast, {}, fe.sim().now() - start});
            return;
          }
          client->read_symbol(
              launcher_pid, rm::apai::kProctable,
              [&fe, cb, start, client](Status rst, Bytes blob) {
                ApaiResult result;
                result.elapsed = fe.sim().now() - start;
                if (!rst.is_ok()) {
                  result.status = rst;
                  cb(std::move(result));
                  return;
                }
                auto table = core::Rpdtab::from_proctable_blob(blob);
                if (!table) {
                  result.status = Status(Rc::Esubcom, "bad proctable");
                } else {
                  result.status = Status::ok();
                  result.table = std::move(*table);
                }
                result.elapsed = fe.sim().now() - start;
                cb(std::move(result));
              });
        });
      });
}

void LmonInstrumentor::acquire(cluster::Process& fe,
                               cluster::Pid launcher_pid,
                               std::function<void(ApaiResult)> cb) {
  const sim::Time start = fe.sim().now();
  fe_api_ = std::make_unique<core::FrontEnd>(fe);
  Status st = fe_api_->init();
  if (!st.is_ok()) {
    cb(ApaiResult{st, {}, 0});
    return;
  }
  auto sid = fe_api_->create_session();
  if (!sid.is_ok()) {
    cb(ApaiResult{sid.status, {}, 0});
    return;
  }
  core::FrontEnd::SpawnConfig cfg;
  cfg.daemon_exe = daemon_exe_;
  fe_api_->attach_and_spawn(
      sid.value, launcher_pid, cfg,
      [this, &fe, cb, start, sid = sid.value](Status ast) {
        ApaiResult result;
        result.status = ast;
        result.elapsed = fe.sim().now() - start;
        if (ast.is_ok()) {
          if (const core::Rpdtab* pt = fe_api_->proctable(sid)) {
            result.table = *pt;
          }
        }
        cb(std::move(result));
      });
}

void OssBe::on_start(cluster::Process& self) {
  be_ = std::make_unique<core::BackEnd>(self);
  core::BackEnd::Callbacks cbs;
  cbs.on_init = [this, &self](const core::Rpdtab&, const Bytes&,
                              std::function<void(Status)> done) {
    // "We augmented the DPCL daemons so the front end can directly start
    // them": connect to the local tasks and install probes, the work the
    // daemon-side DPCL startup routines do.
    const auto locals = be_->my_entries();
    const sim::Time cost =
        static_cast<sim::Time>(locals.size()) * sim::ms(4);
    self.post(cost, [done] { done(Status::ok()); });
  };
  const Status st = be_->init(std::move(cbs));
  if (!st.is_ok()) self.exit(1);
}

void OssBe::install(cluster::Machine& machine) {
  cluster::ProgramImage image;
  image.image_mb = 22.0;  // links the DPCL runtime
  image.factory = [](const std::vector<std::string>&) {
    return std::make_unique<OssBe>();
  };
  machine.install_program("oss_be", std::move(image));
}

}  // namespace lmon::tools::oss
