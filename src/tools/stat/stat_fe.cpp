#include "tools/stat/stat_fe.hpp"

#include "cluster/machine.hpp"
#include "tbon/comm_node.hpp"
#include "tbon/startup.hpp"

namespace lmon::tools::stat {

void StatFe::on_start(cluster::Process& self) {
  register_stat_filter();
  out_->t_start = self.sim().now();
  if (cfg_.mode == StartupMode::AdHocRsh) {
    start_adhoc(self);
  } else {
    start_lmon(self);
  }
}

// --- ad hoc (MRNet-native) path ------------------------------------------------

void StatFe::start_adhoc(cluster::Process& self) {
  if (cfg_.adhoc_hosts.empty()) {
    finish(self, Status(Rc::Einval,
                        "ad hoc mode needs a manually supplied host list"));
    return;
  }
  tbon::Topology topo;
  if (cfg_.n_colocated_comm > 0) {
    // Topology-aware placement: the comm layer rides the job nodes, so
    // each first-block child->parent hop is node-local and no middleware
    // allocation is needed.
    topo = tbon::Topology::shaped_colocated(
        self.node().hostname(), cfg_.tbon_port,
        static_cast<std::size_t>(cfg_.n_colocated_comm), cfg_.adhoc_hosts,
        {comm::TopologyKind::KAry,
         static_cast<std::uint32_t>(cfg_.tbon_fanout)},
        static_cast<cluster::Port>(cfg_.tbon_port + 1),
        cfg_.attach_weights);
  } else if (cfg_.comm_hosts.empty()) {
    topo = tbon::Topology::one_deep(self.node().hostname(), cfg_.tbon_port,
                                    cfg_.adhoc_hosts);
  } else {
    topo = tbon::Topology::shaped(
        self.node().hostname(), cfg_.tbon_port, cfg_.comm_hosts,
        cfg_.adhoc_hosts,
        {comm::TopologyKind::KAry,
         static_cast<std::uint32_t>(cfg_.tbon_fanout)},
        static_cast<cluster::Port>(cfg_.tbon_port + 1),
        cfg_.attach_weights);
  }
  make_root(self, topo);

  tbon::adhoc_launch(self, topo_, "tbon_commd", "stat_be", {},
                     [this, &self](rsh::LaunchOutcome outcome) {
                       out_->t_daemons_launched = self.sim().now();
                       if (!outcome.status.is_ok()) {
                         finish(self, outcome.status);
                         return;
                       }
                       // Keep the rsh sessions alive for the daemons.
                       adhoc_sessions_ = std::move(outcome.sessions);
                     });
}

// --- LaunchMON path ----------------------------------------------------------------

void StatFe::start_lmon(cluster::Process& self) {
  fe_ = std::make_unique<core::FrontEnd>(self);
  Status st = fe_->init();
  if (!st.is_ok()) {
    finish(self, st);
    return;
  }
  auto sid = fe_->create_session();
  if (!sid.is_ok()) {
    finish(self, sid.status);
    return;
  }
  sid_ = sid.value;

  core::FrontEnd::SpawnConfig cfg;
  cfg.daemon_exe = "stat_be";
  if (cfg_.n_comm_nodes == 0) {
    // 1-deep: the registered pack function builds the topology over the
    // RPDTAB's hosts at handshake time and stands the root up.
    cfg.fe_data_provider = [this, &self]() -> Bytes {
      const core::Rpdtab* pt = fe_->proctable(sid_);
      if (pt == nullptr) return {};
      make_root(self, tbon::Topology::one_deep(self.node().hostname(),
                                               cfg_.tbon_port, pt->hosts()));
      return topo_.pack();
    };
  }

  fe_->attach_and_spawn(sid_, cfg_.launcher_pid, cfg, [this, &self](Status ast) {
    out_->t_daemons_launched = self.sim().now();
    if (!ast.is_ok()) {
      finish(self, ast);
      return;
    }
    session_ready_ = true;
    if (cfg_.n_comm_nodes > 0) {
      launch_backends_lmon(self);
    }
    // 1-deep: nothing else to do; tree readiness fires via make_root.
  });
}

void StatFe::launch_backends_lmon(cluster::Process& self) {
  // Deep topology: allocate middleware nodes through the MW API, then
  // broadcast the completed topology to the back ends over LMONP.
  core::FrontEnd::SpawnConfig mw_cfg;
  mw_cfg.daemon_exe = "tbon_commd_lmon";
  mw_cfg.fe_data_provider = [this, &self]() -> Bytes {
    const core::Rpdtab* pt = fe_->proctable(sid_);
    const core::Rpdtab* mw = fe_->mw_table(sid_);
    if (pt == nullptr || mw == nullptr) return {};
    make_root(self,
              tbon::Topology::balanced(
                  self.node().hostname(), cfg_.tbon_port, mw->hosts(),
                  pt->hosts(), cfg_.tbon_fanout,
                  static_cast<cluster::Port>(cfg_.tbon_port + 1)));
    return topo_.pack();
  };
  fe_->launch_mw_daemons(
      sid_, static_cast<std::uint32_t>(cfg_.n_comm_nodes), mw_cfg,
      [this, &self](Status st) {
        if (!st.is_ok()) {
          finish(self, st);
          return;
        }
        // Comm daemons are wiring up; hand the back ends the topology.
        Status sst = fe_->send_usrdata_be(sid_, topo_.pack());
        if (!sst.is_ok()) finish(self, sst);
      });
}

// --- shared ---------------------------------------------------------------------------

void StatFe::make_root(cluster::Process& self, tbon::Topology topo) {
  topo_ = std::move(topo);
  tbon::TbonEndpoint::Callbacks cbs;
  cbs.on_tree_ready = [this, &self](Status st) { on_tree_ready(self, st); };
  cbs.on_up = [this, &self](std::uint32_t, std::uint32_t tag,
                            const Bytes& data,
                            const std::vector<std::uint32_t>&) {
    if (tag != kTagSample) return;
    PrefixTree merged;
    for (const auto& packed : tbon::split_concat(data)) {
      auto t = PrefixTree::unpack(packed);
      if (t) merged.merge(*t);
    }
    out_->t_sampled = self.sim().now();
    out_->classes = merged.equivalence_classes();
    out_->tree = std::move(merged);
    finish(self, Status::ok());
  };
  root_ = std::make_unique<tbon::TbonEndpoint>(self, topo_, 0,
                                               std::move(cbs));
  root_->start();
}

void StatFe::on_tree_ready(cluster::Process& self, Status st) {
  if (!st.is_ok()) {
    finish(self, st);
    return;
  }
  tree_ready_ = true;
  out_->t_tree_connected = self.sim().now();
  // The TBON can finish wiring before the FE API's completion callback
  // lands (the ready-ack gather is still draining); clamp so the
  // "handshake share" metric stays well-defined.
  if (out_->t_daemons_launched == 0 ||
      out_->t_daemons_launched > out_->t_tree_connected) {
    out_->t_daemons_launched = out_->t_tree_connected;
  }
  if (cfg_.take_sample) {
    sample(self);
  } else {
    finish(self, Status::ok());
  }
}

void StatFe::sample(cluster::Process& self) {
  (void)self;
  const std::uint32_t stream = root_->new_stream(kFilterStatMerge);
  root_->send_down(stream, kTagSample, {});
}

void StatFe::finish(cluster::Process& self, Status st) {
  (void)self;
  if (out_->done) return;
  out_->done = true;
  out_->status = st;
  if (out_->t_tree_connected == 0) out_->t_tree_connected = self.sim().now();
}

}  // namespace lmon::tools::stat
