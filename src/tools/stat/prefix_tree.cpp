#include "tools/stat/prefix_tree.hpp"

#include <functional>

namespace lmon::tools::stat {

PrefixTree::PrefixTree() : root_(std::make_unique<Node>()) {
  root_->frame = "<root>";
}

void PrefixTree::add_trace(const std::vector<std::string>& stack,
                           std::int32_t rank) {
  Node* cur = root_.get();
  cur->ranks.insert(rank);
  for (const auto& frame : stack) {
    auto& child = cur->children[frame];
    if (child == nullptr) {
      child = std::make_unique<Node>();
      child->frame = frame;
    }
    child->ranks.insert(rank);
    cur = child.get();
  }
  cur->terminal_ranks.insert(rank);
}

void PrefixTree::merge_into(Node& dst, const Node& src) {
  dst.ranks.insert(src.ranks.begin(), src.ranks.end());
  dst.terminal_ranks.insert(src.terminal_ranks.begin(),
                            src.terminal_ranks.end());
  for (const auto& [frame, child] : src.children) {
    auto& dchild = dst.children[frame];
    if (dchild == nullptr) {
      dchild = std::make_unique<Node>();
      dchild->frame = frame;
    }
    merge_into(*dchild, *child);
  }
}

void PrefixTree::merge(const PrefixTree& other) {
  merge_into(*root_, *other.root_);
}

std::vector<PrefixTree::EquivClass> PrefixTree::equivalence_classes() const {
  std::vector<EquivClass> out;
  std::vector<std::string> path;
  std::function<void(const Node&)> walk = [&](const Node& n) {
    if (!n.terminal_ranks.empty() && !path.empty()) {
      out.push_back(EquivClass{path, n.terminal_ranks});
    }
    for (const auto& [frame, child] : n.children) {
      path.push_back(frame);
      walk(*child);
      path.pop_back();
    }
  };
  walk(*root_);
  return out;
}

std::size_t PrefixTree::node_count() const {
  std::size_t count = 0;
  std::function<void(const Node&)> walk = [&](const Node& n) {
    count += 1;
    for (const auto& [frame, child] : n.children) walk(*child);
  };
  walk(*root_);
  return count - 1;  // exclude the synthetic root
}

std::set<std::int32_t> PrefixTree::all_ranks() const { return root_->ranks; }

namespace {

void pack_node(ByteWriter& w, const PrefixTree::Node& n) {
  w.str(n.frame);
  w.u32(static_cast<std::uint32_t>(n.ranks.size()));
  for (std::int32_t r : n.ranks) w.i32(r);
  w.u32(static_cast<std::uint32_t>(n.terminal_ranks.size()));
  for (std::int32_t r : n.terminal_ranks) w.i32(r);
  w.u32(static_cast<std::uint32_t>(n.children.size()));
  for (const auto& [frame, child] : n.children) pack_node(w, *child);
}

bool unpack_node(ByteReader& r, PrefixTree::Node& n) {
  auto frame = r.str();
  auto nranks = r.u32();
  if (!frame || !nranks) return false;
  n.frame = std::move(*frame);
  for (std::uint32_t i = 0; i < *nranks; ++i) {
    auto rank = r.i32();
    if (!rank) return false;
    n.ranks.insert(*rank);
  }
  auto nterm = r.u32();
  if (!nterm) return false;
  for (std::uint32_t i = 0; i < *nterm; ++i) {
    auto rank = r.i32();
    if (!rank) return false;
    n.terminal_ranks.insert(*rank);
  }
  auto nchildren = r.u32();
  if (!nchildren) return false;
  for (std::uint32_t i = 0; i < *nchildren; ++i) {
    auto child = std::make_unique<PrefixTree::Node>();
    if (!unpack_node(r, *child)) return false;
    n.children.emplace(child->frame, std::move(child));
  }
  return true;
}

}  // namespace

Bytes PrefixTree::pack() const {
  ByteWriter w;
  pack_node(w, *root_);
  return std::move(w).take();
}

std::optional<PrefixTree> PrefixTree::unpack(const Bytes& data) {
  ByteReader r(data);
  PrefixTree t;
  if (!unpack_node(r, *t.root_)) return std::nullopt;
  return t;
}

std::string PrefixTree::render() const {
  std::string out;
  std::function<void(const Node&, int)> walk = [&](const Node& n, int depth) {
    if (depth > 0) {
      out.append(static_cast<std::size_t>(depth - 1) * 2, ' ');
      out += n.frame;
      out += "  [" + std::to_string(n.ranks.size()) + " task" +
             (n.ranks.size() == 1 ? "" : "s") + "]\n";
    }
    for (const auto& [frame, child] : n.children) walk(*child, depth + 1);
  };
  walk(*root_, 0);
  return out;
}

}  // namespace lmon::tools::stat
