// stat_be.hpp - STAT's stack-sampling back-end daemon.
//
// Two startup modes, matching the paper's Fig. 6 comparison:
//
//  * LaunchMON mode (argv has --lmon-*): the daemon initializes the BE API;
//    the TBON topology arrives piggybacked on the handshake ("STAT also
//    uses LMONP to broadcast MRNet communication tree information from the
//    front end to the daemons"); local tasks come from the RPDTAB.
//  * Ad hoc MRNet mode (argv has --tbon-*): topology comes hex-encoded on
//    the command line (the "less scalable method"); local tasks are found
//    by scanning the node's processes for the application image.
//
// In both modes the daemon joins the TBON as a leaf, and on a SAMPLE
// request walks each local task's stack and sends the local prefix tree
// upstream, where the STAT merge filter combines subtrees.
#pragma once

#include <memory>

#include "cluster/process.hpp"
#include "core/be_api.hpp"
#include "tbon/endpoint.hpp"
#include "tools/stat/prefix_tree.hpp"

namespace lmon::tools::stat {

/// TBON stream tag used for sample requests/responses.
inline constexpr std::uint32_t kTagSample = 1;
/// STAT's registered TBON merge filter id.
inline constexpr std::uint32_t kFilterStatMerge = tbon::kFilterUserBase;

/// Registers the STAT merge filter with the TBON filter registry.
void register_stat_filter();

class StatBe : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "stat_be"; }
  void on_start(cluster::Process& self) override;

  static void install(cluster::Machine& machine);

 private:
  void start_lmon(cluster::Process& self);
  void start_adhoc(cluster::Process& self);
  bool accept_topology(cluster::Process& self, const Bytes& data);
  void join_tbon(cluster::Process& self, tbon::Topology topo, int index);
  void on_sample_request(cluster::Process& self, std::uint32_t stream,
                         std::uint32_t tag);
  /// (host, pid, rank) triples of the tasks this daemon samples.
  [[nodiscard]] std::vector<std::pair<cluster::Pid, std::int32_t>>
  local_tasks(cluster::Process& self) const;

  std::unique_ptr<core::BackEnd> be_;        // LaunchMON mode only
  std::unique_ptr<tbon::TbonEndpoint> tbon_;
  bool adhoc_ = false;
};

}  // namespace lmon::tools::stat
