// stat_fe.hpp - STAT front end with both startup paths (paper §5.2).
//
// Attaches to a running job and gathers a merged call-graph prefix tree
// over a TBON. Startup is either:
//   * AdHocRsh  - MRNet-native: serial rsh launch of daemons with the
//                 topology on their command lines (Fig. 6 "MRNet 1-deep"),
//   * LaunchMon - attachAndSpawn with the topology piggybacked over LMONP
//                 (Fig. 6 "LaunchMON 1-deep").
// The outcome records the same metric Fig. 6 plots: daemon launch+connect
// time, plus the TBON handshake share.
#pragma once

#include <memory>
#include <optional>

#include "cluster/process.hpp"
#include "core/fe_api.hpp"
#include "tbon/endpoint.hpp"
#include "tools/stat/prefix_tree.hpp"
#include "tools/stat/stat_be.hpp"

namespace lmon::tools::stat {

enum class StartupMode { AdHocRsh, LaunchMon };

struct StatOutcome {
  bool done = false;
  Status status;
  sim::Time t_start = 0;
  sim::Time t_daemons_launched = 0;  ///< rsh done / attachAndSpawn returned
  sim::Time t_tree_connected = 0;    ///< TBON fully wired (launch+connect)
  sim::Time t_sampled = 0;           ///< merged tree received
  std::optional<PrefixTree> tree;
  std::vector<PrefixTree::EquivClass> classes;

  [[nodiscard]] double launch_connect_seconds() const {
    return sim::to_seconds(t_tree_connected - t_start);
  }
  [[nodiscard]] double handshake_seconds() const {
    const sim::Time d = t_tree_connected - t_daemons_launched;
    return d > 0 ? sim::to_seconds(d) : 0.0;
  }
};

struct StatConfig {
  StartupMode mode = StartupMode::LaunchMon;
  cluster::Pid launcher_pid = cluster::kInvalidPid;  ///< job to attach to
  /// Hosts for the ad hoc path (no RPDTAB available without LaunchMON; the
  /// user must supply the node list manually - the usability gap the paper
  /// calls out).
  std::vector<std::string> adhoc_hosts;
  /// Ad hoc mode: comm-daemon hosts for deeper topologies; empty = 1-deep.
  std::vector<std::string> comm_hosts;
  /// Ad hoc mode, topology-aware placement: carve this many comm daemons
  /// out of the job nodes themselves (each lands on the first back-end
  /// host of the contiguous block its subtree serves), instead of using
  /// dedicated comm_hosts. Takes precedence over comm_hosts when > 0.
  int n_colocated_comm = 0;
  /// Optional capacity weights, one per back-end attach point (leaf comm
  /// daemon in rank order): sizes each attach point's contiguous back-end
  /// block proportionally. Empty = near-equal blocks.
  std::vector<double> attach_weights;
  /// LaunchMON mode: middleware daemons to allocate via the MW API for a
  /// deeper topology; 0 = 1-deep.
  int n_comm_nodes = 0;
  int tbon_fanout = 16;
  cluster::Port tbon_port = cluster::kTbonBasePort;
  bool take_sample = true;
};

class StatFe : public cluster::Program {
 public:
  StatFe(StatConfig config, StatOutcome* out)
      : cfg_(std::move(config)), out_(out) {}

  [[nodiscard]] std::string_view name() const override { return "stat_fe"; }
  void on_start(cluster::Process& self) override;

 private:
  void start_adhoc(cluster::Process& self);
  void start_lmon(cluster::Process& self);
  void launch_backends_lmon(cluster::Process& self);
  void make_root(cluster::Process& self, tbon::Topology topo);
  void on_tree_ready(cluster::Process& self, Status st);
  void sample(cluster::Process& self);
  void finish(cluster::Process& self, Status st);

  StatConfig cfg_;
  StatOutcome* out_;
  std::unique_ptr<core::FrontEnd> fe_;
  std::unique_ptr<tbon::TbonEndpoint> root_;
  tbon::Topology topo_;
  std::vector<cluster::ChannelPtr> adhoc_sessions_;
  int sid_ = -1;
  bool session_ready_ = false;
  bool tree_ready_ = false;
};

}  // namespace lmon::tools::stat
