// prefix_tree.hpp - STAT's call-graph prefix tree (paper §5.2).
//
// "It gathers and merges multiple stack traces from a parallel
//  application's processes to form a call graph prefix tree that identifies
//  process equivalence classes (i.e., similarly behaving processes)."
//
// Each tree node is a stack frame; the set of ranks whose trace passes
// through the node is attached. Equivalence classes are the rank sets of
// the leaves: every class is a group of tasks with an identical call path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace lmon::tools::stat {

class PrefixTree {
 public:
  struct Node {
    std::string frame;
    std::set<std::int32_t> ranks;           ///< traces passing through
    std::set<std::int32_t> terminal_ranks;  ///< traces ending exactly here
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  PrefixTree();
  PrefixTree(PrefixTree&&) noexcept = default;
  PrefixTree& operator=(PrefixTree&&) noexcept = default;

  /// Inserts one task's stack trace (outermost frame first).
  void add_trace(const std::vector<std::string>& stack, std::int32_t rank);

  /// Merges another tree into this one (associative & commutative, which is
  /// what lets TBON filters combine subtrees in any order).
  void merge(const PrefixTree& other);

  /// Equivalence classes: one per distinct complete call path, i.e. per
  /// node where at least one task's trace terminates (a task whose stack is
  /// a strict prefix of another's forms its own class).
  struct EquivClass {
    std::vector<std::string> path;
    std::set<std::int32_t> ranks;
  };
  [[nodiscard]] std::vector<EquivClass> equivalence_classes() const;

  [[nodiscard]] std::size_t node_count() const;
  [[nodiscard]] std::set<std::int32_t> all_ranks() const;
  [[nodiscard]] bool empty() const { return root_->children.empty(); }

  [[nodiscard]] Bytes pack() const;
  static std::optional<PrefixTree> unpack(const Bytes& data);

  /// Indented text rendering ("main / solver_loop / ... : ranks [...]").
  [[nodiscard]] std::string render() const;

  [[nodiscard]] const Node& root() const { return *root_; }

 private:
  static void merge_into(Node& dst, const Node& src);
  std::unique_ptr<Node> root_;
};

}  // namespace lmon::tools::stat
