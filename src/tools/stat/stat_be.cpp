#include "tools/stat/stat_be.hpp"

#include "apps/mpi_app.hpp"
#include "cluster/machine.hpp"
#include "common/argparse.hpp"

namespace lmon::tools::stat {

void register_stat_filter() {
  tbon::FilterRegistry::instance().register_filter(
      kFilterStatMerge, [](const std::vector<Bytes>& inputs) {
        // Inputs are concat frames of packed prefix trees; merge them all
        // into one tree and emit a single-element concat frame.
        PrefixTree merged;
        for (const auto& frame : inputs) {
          for (const auto& packed : tbon::split_concat(frame)) {
            auto t = PrefixTree::unpack(packed);
            if (t) merged.merge(*t);
          }
        }
        return tbon::concat_payloads(
            {tbon::wrap_leaf_payload(merged.pack())});
      });
}

void StatBe::on_start(cluster::Process& self) {
  adhoc_ = arg_value(self.args(), "--tbon-topology=").has_value();
  if (adhoc_) {
    start_adhoc(self);
  } else {
    start_lmon(self);
  }
}

void StatBe::start_lmon(cluster::Process& self) {
  be_ = std::make_unique<core::BackEnd>(self);
  core::BackEnd::Callbacks cbs;
  cbs.on_init = [this, &self](const core::Rpdtab&, const Bytes& usrdata,
                              std::function<void(Status)> done) {
    // 1-deep startups piggyback the packed topology on the handshake
    // (via the FE's registered pack function); deeper topologies deliver
    // it after Ready through a LMONP UsrData + ICCL broadcast, because the
    // middleware hosts are only known once the MW daemons are allocated.
    if (!usrdata.empty()) {
      if (!accept_topology(self, usrdata)) {
        done(Status(Rc::Ebdarg, "bad TBON topology in handshake"));
        return;
      }
    }
    done(Status::ok());
  };
  cbs.on_ready = [this, &self](Status st) {
    if (!st.is_ok()) {
      self.exit(1);
      return;
    }
    if (tbon_ != nullptr) return;  // already joined via piggyback
    // Wait for the topology broadcast: the master relays the FE's UsrData
    // down the ICCL tree ("STAT also uses LMONP to broadcast MRNet
    // communication tree information from the front end to the daemons").
    if (!be_->is_master()) {
      be_->broadcast({}, [this, &self](const Bytes& data) {
        (void)accept_topology(self, data);
      });
    }
  };
  cbs.on_usrdata = [this, &self](const Bytes& data) {
    // Master only: FE delivered the topology; fan it out.
    if (tbon_ != nullptr) return;
    be_->broadcast(data, [this, &self](const Bytes& topo_bytes) {
      (void)accept_topology(self, topo_bytes);
    });
  };
  const Status st = be_->init(std::move(cbs));
  if (!st.is_ok()) self.exit(1);
}

bool StatBe::accept_topology(cluster::Process& self, const Bytes& data) {
  auto topo = tbon::Topology::unpack(data);
  if (!topo || !topo->valid()) return false;
  const int index = topo->index_of_backend(static_cast<int>(be_->rank()));
  if (index < 0) return false;
  join_tbon(self, std::move(*topo), index);
  return true;
}

void StatBe::start_adhoc(cluster::Process& self) {
  const auto topo_hex = arg_value(self.args(), "--tbon-topology=");
  const auto index = arg_int(self.args(), "--tbon-index=");
  if (!topo_hex || !index) {
    self.exit(1);
    return;
  }
  auto blob = from_hex(*topo_hex);
  auto topo = blob ? tbon::Topology::unpack(*blob) : std::nullopt;
  if (!topo || !topo->valid()) {
    self.exit(1);
    return;
  }
  join_tbon(self, std::move(*topo), static_cast<int>(*index));
}

void StatBe::join_tbon(cluster::Process& self, tbon::Topology topo,
                       int index) {
  tbon::TbonEndpoint::Callbacks cbs;
  cbs.on_down = [this, &self](std::uint32_t stream, std::uint32_t tag,
                              const Bytes&) {
    if (tag == kTagSample) on_sample_request(self, stream, tag);
  };
  tbon_ = std::make_unique<tbon::TbonEndpoint>(self, std::move(topo), index,
                                               std::move(cbs));
  tbon_->start();
}

std::vector<std::pair<cluster::Pid, std::int32_t>> StatBe::local_tasks(
    cluster::Process& self) const {
  std::vector<std::pair<cluster::Pid, std::int32_t>> out;
  if (!adhoc_ && be_ != nullptr) {
    for (const auto& e : be_->my_entries()) {
      out.emplace_back(e.pid, e.rank);
    }
    return out;
  }
  // Ad hoc mode: scan the node's process table for application tasks, the
  // manual discovery a tool must do without an RPDTAB.
  for (cluster::Process* p : self.node().live_processes()) {
    if (p->options().executable == "mpi_app") {
      auto* app = dynamic_cast<apps::MpiApp*>(&p->program());
      out.emplace_back(p->pid(), app != nullptr ? app->rank() : -1);
    }
  }
  return out;
}

void StatBe::on_sample_request(cluster::Process& self, std::uint32_t stream,
                               std::uint32_t tag) {
  const auto tasks = local_tasks(self);
  const auto& costs = self.machine().costs();
  // Scanning /proc (ad hoc discovery) plus one stackwalk per task.
  sim::Time cost = static_cast<sim::Time>(tasks.size()) *
                   (costs.stackwalk_cost + costs.proc_read_cost);
  self.post(cost, [this, &self, tasks, stream, tag] {
    // Fold task traces into partial trees no larger than a transport chunk
    // and stream each upward as it fills (prefix-tree merge is associative,
    // so interior hops fold them incrementally); the final send_up carries
    // the residue plus this daemon's rank. Keeps every hop's working set
    // O(chunk) even when the packed tree outgrows the chunk size.
    const std::size_t chunk = self.machine().costs().iccl_rndv_chunk_bytes;
    PrefixTree local;
    for (const auto& [pid, rank] : tasks) {
      cluster::Process* p = self.machine().find_process(pid);
      if (p == nullptr || p->state() == cluster::ProcState::Exited) continue;
      auto* app = dynamic_cast<apps::MpiApp*>(&p->program());
      if (app == nullptr) continue;
      local.add_trace(app->call_stack(), rank >= 0 ? rank : app->rank());
      if (Bytes packed = local.pack(); packed.size() >= chunk) {
        tbon_->send_up_part(stream, tag, std::move(packed));
        local = PrefixTree{};
      }
    }
    tbon_->send_up(stream, tag, local.pack());
  });
}

void StatBe::install(cluster::Machine& machine) {
  register_stat_filter();
  cluster::ProgramImage image;
  // STAT daemons link a stackwalker library: noticeably bigger image than
  // jobsnap's, part of why Fig. 6 absolute times exceed Fig. 5's.
  image.image_mb = 38.0;
  image.factory = [](const std::vector<std::string>&) {
    return std::make_unique<StatBe>();
  };
  machine.install_program("stat_be", std::move(image));
}

}  // namespace lmon::tools::stat
