// launchers.hpp - ad hoc daemon launching strategies (the paper's baseline).
//
// Two strategies from §2: "Most implementations have the tool front end
// spawn each remote daemon sequentially; others employ a tree-based protocol
// allowing daemons that the tool front end launches to spawn children
// daemons, and so on."
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/process.hpp"
#include "rsh/client.hpp"

namespace lmon::rsh {

inline constexpr cluster::Port kTreeAgentPort = 516;
inline constexpr cluster::Port kTreeReportPort = 517;

struct LaunchTarget {
  std::string host;
  std::string executable;
  std::vector<std::string> args;
};

struct LaunchOutcome {
  Status status;
  /// (host, pid) for each daemon that was started.
  std::vector<std::pair<std::string, cluster::Pid>> daemons;
  /// Open rsh sessions keeping serial-launched daemons alive. The caller
  /// owns these; dropping/closing them kills the daemons.
  std::vector<cluster::ChannelPtr> sessions;
};

/// Sequential front-end rsh launch: one blocking rsh per target, in order.
/// Cost is ~(session cost) x (target count); a fork failure aborts the whole
/// launch, reproducing the paper's hard failure at 512 nodes.
class SerialRshLauncher {
 public:
  using Callback = std::function<void(LaunchOutcome)>;
  static void launch(cluster::Process& self,
                     std::vector<LaunchTarget> targets, Callback cb);

 private:
  struct State;
  static void next(cluster::Process& self, std::shared_ptr<State> st);
};

/// Tree-based ad hoc launch: the front end rsh-starts up to `fanout` agents,
/// each agent starts the local daemon and recursively rsh-starts agents for
/// its subtree, reporting aggregated (host, pid) lists upward.
class TreeRshLauncher {
 public:
  using Callback = std::function<void(LaunchOutcome)>;

  /// `self` must be able to listen on kTreeReportPort, and its Program must
  /// forward unrecognized messages to handle_report() (agents connect back
  /// to the front end and deliver one TreeAck each). All daemons get the
  /// same executable/args.
  static void launch(cluster::Process& self, std::vector<std::string> hosts,
                     std::string daemon_exe,
                     std::vector<std::string> daemon_args, int fanout,
                     Callback cb);

  /// Returns true if the message was a TreeAck consumed by a launch in
  /// progress on `self`.
  static bool handle_report(cluster::Process& self,
                            const cluster::Message& msg);
};

/// The recursive launch agent; registered as program image "rsh_tree_agent".
class TreeAgent : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "rsh_tree_agent";
  }
  void on_start(cluster::Process& self) override;
  void on_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                  cluster::Message msg) override;

 private:
  void maybe_report(cluster::Process& self);

  int awaiting_children_ = 0;
  bool local_done_ = false;
  bool reported_ = false;
  TreeAck ack_;
  std::string report_host_;
  cluster::Port report_port_ = 0;
  std::vector<cluster::ChannelPtr> child_sessions_;
};

/// Registers the tree-agent image with the machine's program registry.
void install_tree_agent(cluster::Machine& machine);

}  // namespace lmon::rsh
