// launchers.hpp - ad hoc daemon launching strategies (the paper's baseline).
//
// Two strategies from §2: "Most implementations have the tool front end
// spawn each remote daemon sequentially; others employ a tree-based protocol
// allowing daemons that the tool front end launches to spawn children
// daemons, and so on."
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/process.hpp"
#include "comm/launch_strategy.hpp"
#include "obs/trace.hpp"
#include "rsh/client.hpp"

namespace lmon::rsh {

inline constexpr cluster::Port kTreeAgentPort = 516;
inline constexpr cluster::Port kTreeReportPort = 517;

struct LaunchTarget {
  std::string host;
  std::string executable;
  std::vector<std::string> args;
};

struct LaunchOutcome {
  Status status;
  /// (host, pid) for each daemon that was started.
  std::vector<std::pair<std::string, cluster::Pid>> daemons;
  /// Open rsh sessions keeping serial-launched daemons alive. The caller
  /// owns these; dropping/closing them kills the daemons.
  std::vector<cluster::ChannelPtr> sessions;
  /// Tree launch only: the ack channels the root agents connected back on.
  /// Agents treat the loss of this channel as "session over" and reap their
  /// local daemon, so closing these tears the whole tree down cleanly.
  std::vector<cluster::ChannelPtr> ack_channels;
};

/// Sequential front-end rsh launch: one blocking rsh per target, in order.
/// Cost is ~(session cost) x (target count); a fork failure aborts the whole
/// launch, reproducing the paper's hard failure at 512 nodes.
class SerialRshLauncher {
 public:
  using Callback = std::function<void(LaunchOutcome)>;
  static void launch(cluster::Process& self,
                     std::vector<LaunchTarget> targets, Callback cb);

 private:
  struct State;
  static void next(cluster::Process& self, std::shared_ptr<State> st);
};

/// Tree-based ad hoc launch: the front end rsh-starts up to `fanout` agents,
/// each agent starts the local daemon and recursively rsh-starts agents for
/// its subtree, reporting aggregated (host, pid) lists upward.
class TreeRshLauncher {
 public:
  using Callback = std::function<void(LaunchOutcome)>;

  /// `self` must be able to listen on kTreeReportPort, and its Program must
  /// forward unrecognized messages to handle_report() (agents connect back
  /// to the front end and deliver one TreeAck each). All daemons get the
  /// same executable/args.
  static void launch(cluster::Process& self, std::vector<std::string> hosts,
                     std::string daemon_exe,
                     std::vector<std::string> daemon_args, int fanout,
                     Callback cb);

  /// Returns true if the message was a TreeAck consumed by a launch in
  /// progress on `self`. `ch` is the channel the ack arrived on; it is
  /// retained so teardown can signal the agent by closing it.
  static bool handle_report(cluster::Process& self,
                            const cluster::ChannelPtr& ch,
                            const cluster::Message& msg);
};

/// The recursive launch agent; registered as program image "rsh_tree_agent".
class TreeAgent : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "rsh_tree_agent";
  }
  void on_start(cluster::Process& self) override;
  void on_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                  cluster::Message msg) override;

 private:
  void maybe_report(cluster::Process& self);
  void shutdown_subtree(cluster::Process& self);
  /// A child agent's rsh session dropped before (or after) its ack; an
  /// unacked loss is a dead subtree and fails the launch upward.
  void on_child_session_lost(cluster::Process& self, const std::string& host);

  int awaiting_children_ = 0;
  bool local_done_ = false;
  bool reported_ = false;
  TreeAck ack_;
  std::set<std::string> acked_hosts_;
  std::string report_host_;
  cluster::Port report_port_ = 0;
  cluster::Pid daemon_pid_ = cluster::kInvalidPid;
  std::vector<cluster::ChannelPtr> child_sessions_;
  std::vector<cluster::ChannelPtr> child_acks_;
  obs::SpanId span_ = obs::kNoSpan;  ///< this agent's subtree launch span
};

/// Registers the tree-agent image with the machine's program registry.
void install_tree_agent(cluster::Machine& machine);

// --- comm::LaunchStrategy bindings -------------------------------------------
//
// The ad hoc launchers above wrapped as pluggable strategies: both assemble
// the daemon bootstrap argv through comm/bootstrap.hpp and keep the rsh
// sessions that hold the daemons alive, so teardown is "drop the sessions".

/// Sequential rsh with an explicit --lmon-rank per daemon.
class SerialRshStrategy final : public comm::LaunchStrategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "serial-rsh"; }
  [[nodiscard]] comm::LaunchStrategyKind kind() const override {
    return comm::LaunchStrategyKind::SerialRsh;
  }
  void launch(cluster::Process& self, comm::LaunchRequest req,
              Callback cb) override;
  void teardown(cluster::Process& self,
                std::function<void(Status)> cb) override;

 private:
  std::vector<cluster::ChannelPtr> sessions_;
};

/// Recursive tree rsh. Every daemon receives an identical command line
/// (the agent protocol cannot vary argv per host), so the bootstrap rank is
/// derived from the host list on the daemon side. The process driving the
/// launch must forward unrecognized messages to
/// TreeRshLauncher::handle_report().
class TreeRshStrategy final : public comm::LaunchStrategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "tree-rsh"; }
  [[nodiscard]] comm::LaunchStrategyKind kind() const override {
    return comm::LaunchStrategyKind::TreeRsh;
  }
  void launch(cluster::Process& self, comm::LaunchRequest req,
              Callback cb) override;
  void teardown(cluster::Process& self,
                std::function<void(Status)> cb) override;

 private:
  std::vector<cluster::ChannelPtr> sessions_;
  std::vector<cluster::ChannelPtr> ack_channels_;
};

}  // namespace lmon::rsh
