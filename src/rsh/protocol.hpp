// protocol.hpp - wire messages for the rsh substrate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/message.hpp"
#include "cluster/types.hpp"
#include "common/bytes.hpp"

namespace lmon::rsh {

enum class MsgType : std::uint32_t {
  ExecReq = 100,
  ExecResp,
  TreeAck,
};

std::optional<MsgType> peek_type(const cluster::Message& msg);

/// "rsh <host> <exe> <args...>": asks the remote rshd to spawn a command.
struct ExecReq {
  std::string executable;
  std::vector<std::string> args;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<ExecReq> decode(const cluster::Message& m);
};

struct ExecResp {
  bool ok = false;
  std::string error;
  cluster::Pid pid = cluster::kInvalidPid;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<ExecResp> decode(const cluster::Message& m);
};

/// Aggregated subtree result reported upward by tree-launch agents.
struct TreeAck {
  bool ok = false;
  std::string error;
  /// Hostname of the reporting agent (its chunk's first host). Lets the
  /// parent correlate the ack with the rsh session that launched that
  /// agent, so a session lost *before* its ack is detectably a dead
  /// subtree (fault injection: a mid-tree agent killed during bootstrap).
  std::string agent_host;
  /// (host, pid) of every daemon in the reporting subtree.
  std::vector<std::pair<std::string, cluster::Pid>> daemons;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<TreeAck> decode(const cluster::Message& m);
};

}  // namespace lmon::rsh
