#include "rsh/client.hpp"

#include <memory>
#include <utility>

#include "cluster/machine.hpp"

namespace lmon::rsh {

void RshSession::run(cluster::Process& self, const std::string& host,
                     const std::string& executable,
                     std::vector<std::string> args, Callback cb) {
  // fork()+exec of the local rsh helper. This is the step that hits the
  // per-user process limit at scale.
  cluster::SpawnOptions helper_opts;
  helper_opts.executable = "rsh";
  helper_opts.image_mb = 1.0;
  auto helper = self.spawn_child(std::make_unique<RshHelper>(),
                                 std::move(helper_opts));
  if (!helper.is_ok()) {
    self.post(self.machine().costs().rsh_client_fork,
              [cb, st = helper.status] {
                cb(RemoteExec{st, cluster::kInvalidPid, cluster::kInvalidPid,
                              nullptr});
              });
    return;
  }
  const cluster::Pid helper_pid = helper.value;

  // Session establishment: connection + authentication + remote shell
  // startup. The rsh invocation blocks its caller, so concurrent launches
  // from one process serialize (reserve_busy); this per-target constant
  // dominates serial ad hoc launching and bounds rsh-tree speedups.
  const sim::Time session_cost = self.reserve_busy(
      self.machine().costs().rsh_client_fork +
      self.machine().costs().rsh_session_cost);
  self.post(session_cost, [&self, host, executable,
                           args = std::move(args), cb, helper_pid]() mutable {
    self.connect(
        host, cluster::kRshDaemonPort,
        [&self, executable, args = std::move(args), cb, helper_pid](
            Status st, cluster::ChannelPtr ch) mutable {
          if (!st.is_ok()) {
            reap_helper(self, helper_pid);
            cb(RemoteExec{st, cluster::kInvalidPid, helper_pid, nullptr});
            return;
          }
          ExecReq req;
          req.executable = executable;
          req.args = std::move(args);

          self.set_channel_handler(
              ch,
              [&self, cb, helper_pid](const cluster::ChannelPtr& chan,
                                      cluster::Message msg) {
                auto resp = ExecResp::decode(msg);
                self.clear_channel_handler(chan->id());
                if (!resp || !resp->ok) {
                  const std::string why =
                      resp ? resp->error : "rshd protocol error";
                  reap_helper(self, helper_pid);
                  self.close_channel(const_cast<cluster::ChannelPtr&>(chan));
                  cb(RemoteExec{Status(Rc::Esubcom, why), cluster::kInvalidPid,
                                helper_pid, nullptr});
                  return;
                }
                cb(RemoteExec{Status::ok(), resp->pid, helper_pid, chan});
              },
              [&self, cb, helper_pid](const cluster::ChannelPtr&) {
                reap_helper(self, helper_pid);
                cb(RemoteExec{Status(Rc::Esubcom, "rsh session lost"),
                              cluster::kInvalidPid, helper_pid, nullptr});
              });
          self.send(ch, req.encode());
        });
  });
}

void RshSession::reap_helper(cluster::Process& self, cluster::Pid helper) {
  cluster::Process* h = self.machine().find_process(helper);
  if (h != nullptr && h->state() != cluster::ProcState::Exited) h->exit(1);
}

}  // namespace lmon::rsh
