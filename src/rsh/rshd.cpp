#include "rsh/rshd.hpp"

#include <memory>

#include "cluster/machine.hpp"

namespace lmon::rsh {

void Rshd::on_start(cluster::Process& self) {
  (void)self.listen(cluster::kRshDaemonPort);
}

void Rshd::on_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                      cluster::Message msg) {
  auto req = ExecReq::decode(msg);
  if (!req) return;

  const cluster::ProgramImage* image =
      self.machine().find_program(req->executable);
  if (image == nullptr) {
    ExecResp resp;
    resp.ok = false;
    resp.error = "rshd: command not found: " + req->executable;
    self.send(ch, resp.encode());
    return;
  }

  // Authentication + shell setup + fork of the command.
  self.post(self.machine().costs().rshd_spawn_cost,
            [this, &self, ch, req = std::move(*req), image] {
              cluster::SpawnOptions opts;
              opts.executable = req.executable;
              opts.image_mb = image->image_mb;
              opts.args = req.args;
              auto prog = image->factory(opts.args);
              auto res = self.spawn_child(std::move(prog), std::move(opts));
              ExecResp resp;
              if (!res.is_ok()) {
                resp.ok = false;
                resp.error = res.status.message();
              } else {
                resp.ok = true;
                resp.pid = res.value;
                sessions_[ch->id()] = Session{res.value, ch};
              }
              self.send(ch, resp.encode());
            });
}

void Rshd::on_channel_closed(cluster::Process& self,
                             const cluster::ChannelPtr& ch) {
  auto it = sessions_.find(ch->id());
  if (it == sessions_.end()) return;
  cluster::Process* child = self.machine().find_process(it->second.pid);
  sessions_.erase(it);
  if (child != nullptr && child->state() != cluster::ProcState::Exited) {
    child->exit(9);  // SIGHUP on session loss
  }
}

void Rshd::on_child_exit(cluster::Process& self, cluster::Pid child,
                         int exit_code) {
  (void)exit_code;
  // The remote command finished (or was killed): hang up its session so
  // the client side sees the EOF, exactly like a real rsh invocation
  // returning when the remote process exits.
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->second.pid != child) continue;
    cluster::ChannelPtr ch = it->second.channel;
    sessions_.erase(it);
    if (ch != nullptr && ch->is_open()) self.close_channel(ch);
    break;
  }
}

Status install(cluster::Machine& machine) {
  for (int i = 0; i < machine.num_nodes(); ++i) {
    cluster::SpawnOptions opts;
    opts.executable = "rshd";
    opts.image_mb = 1.0;
    auto r = machine.node(i).spawn(std::make_unique<Rshd>(), std::move(opts));
    if (!r.is_ok()) return r.status;
  }
  return Status::ok();
}

}  // namespace lmon::rsh
