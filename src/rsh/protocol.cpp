#include "rsh/protocol.hpp"

namespace lmon::rsh {

namespace {

ByteWriter begin(MsgType t) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(t));
  return w;
}

std::optional<ByteReader> open(const cluster::Message& m, MsgType expect) {
  ByteReader r(m.bytes);
  auto t = r.u32();
  if (!t || *t != static_cast<std::uint32_t>(expect)) return std::nullopt;
  return r;
}

}  // namespace

std::optional<MsgType> peek_type(const cluster::Message& msg) {
  ByteReader r(msg.bytes);
  auto t = r.u32();
  if (!t) return std::nullopt;
  if (*t < static_cast<std::uint32_t>(MsgType::ExecReq) ||
      *t > static_cast<std::uint32_t>(MsgType::TreeAck)) {
    return std::nullopt;
  }
  return static_cast<MsgType>(*t);
}

cluster::Message ExecReq::encode() const {
  ByteWriter w = begin(MsgType::ExecReq);
  w.str(executable);
  w.u32(static_cast<std::uint32_t>(args.size()));
  for (const auto& a : args) w.str(a);
  return cluster::Message(std::move(w).take());
}

std::optional<ExecReq> ExecReq::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::ExecReq);
  if (!r) return std::nullopt;
  ExecReq out;
  auto exe = r->str();
  auto n = r->u32();
  if (!exe || !n) return std::nullopt;
  out.executable = std::move(*exe);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto a = r->str();
    if (!a) return std::nullopt;
    out.args.push_back(std::move(*a));
  }
  return out;
}

cluster::Message ExecResp::encode() const {
  ByteWriter w = begin(MsgType::ExecResp);
  w.boolean(ok);
  w.str(error);
  w.i64(pid);
  return cluster::Message(std::move(w).take());
}

std::optional<ExecResp> ExecResp::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::ExecResp);
  if (!r) return std::nullopt;
  auto ok_f = r->boolean();
  auto err = r->str();
  auto pid = r->i64();
  if (!ok_f || !err || !pid) return std::nullopt;
  return ExecResp{*ok_f, std::move(*err), *pid};
}

cluster::Message TreeAck::encode() const {
  ByteWriter w = begin(MsgType::TreeAck);
  w.boolean(ok);
  w.str(error);
  w.str(agent_host);
  w.u32(static_cast<std::uint32_t>(daemons.size()));
  for (const auto& [host, pid] : daemons) {
    w.str(host);
    w.i64(pid);
  }
  return cluster::Message(std::move(w).take());
}

std::optional<TreeAck> TreeAck::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::TreeAck);
  if (!r) return std::nullopt;
  TreeAck out;
  auto ok_f = r->boolean();
  auto err = r->str();
  auto agent = r->str();
  auto n = r->u32();
  if (!ok_f || !err || !agent || !n) return std::nullopt;
  out.ok = *ok_f;
  out.error = std::move(*err);
  out.agent_host = std::move(*agent);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto host = r->str();
    auto pid = r->i64();
    if (!host || !pid) return std::nullopt;
    out.daemons.emplace_back(std::move(*host), *pid);
  }
  return out;
}

}  // namespace lmon::rsh
