#include "rsh/launchers.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <set>

#include "cluster/machine.hpp"
#include "comm/bootstrap.hpp"
#include "common/argparse.hpp"
#include "simkernel/log.hpp"

namespace lmon::rsh {

// --- serial -----------------------------------------------------------------

struct SerialRshLauncher::State {
  std::vector<LaunchTarget> targets;
  std::size_t next_index = 0;
  LaunchOutcome outcome;
  Callback cb;
};

void SerialRshLauncher::launch(cluster::Process& self,
                               std::vector<LaunchTarget> targets,
                               Callback cb) {
  auto st = std::make_shared<State>();
  st->targets = std::move(targets);
  st->cb = std::move(cb);
  st->outcome.status = Status::ok();
  next(self, std::move(st));
}

void SerialRshLauncher::next(cluster::Process& self,
                             std::shared_ptr<State> st) {
  if (st->next_index >= st->targets.size()) {
    st->cb(std::move(st->outcome));
    return;
  }
  const LaunchTarget& t = st->targets[st->next_index];
  RshSession::run(self, t.host, t.executable, t.args,
                  [&self, st](RemoteExec res) mutable {
                    if (!res.status.is_ok()) {
                      // One failed fork aborts the whole ad hoc launch; the
                      // already-started daemons stay up (leaked), exactly the
                      // unpleasant failure mode the paper describes.
                      st->outcome.status = res.status;
                      st->cb(std::move(st->outcome));
                      return;
                    }
                    st->outcome.daemons.emplace_back(
                        st->targets[st->next_index].host, res.remote_pid);
                    st->outcome.sessions.push_back(res.session);
                    st->next_index += 1;
                    next(self, st);
                  });
}

// --- tree -----------------------------------------------------------------------

namespace {

/// Splits hosts[begin..] into up to `fanout` contiguous chunks; the subtree
/// partition itself comes from comm::split_contiguous.
std::vector<std::vector<std::string>> chunk_hosts(
    const std::vector<std::string>& hosts, std::size_t begin, int fanout) {
  std::vector<std::vector<std::string>> chunks;
  if (begin >= hosts.size()) return chunks;
  const auto splits = comm::split_contiguous(
      hosts.size() - begin,
      fanout <= 0 ? 1u : static_cast<std::uint32_t>(fanout));
  chunks.reserve(splits.size());
  for (const auto& [off, len] : splits) {
    const std::size_t pos = begin + off;
    chunks.emplace_back(hosts.begin() + static_cast<std::ptrdiff_t>(pos),
                        hosts.begin() + static_cast<std::ptrdiff_t>(pos + len));
  }
  return chunks;
}

/// Launches agents for each chunk sequentially via rsh and wires their acks
/// into completion bookkeeping shared by the FE facade and TreeAgent.
struct SubtreeLauncher {
  /// `on_session_lost(host)` fires when a child agent's rsh session drops
  /// while the launch owner is still running (the channel-close side; a
  /// local teardown close never triggers it). The owner decides whether
  /// the loss matters by checking whether that agent already acked.
  static void launch_chunks(
      cluster::Process& self,
      std::vector<std::vector<std::string>> chunks, const std::string& exe,
      const std::vector<std::string>& daemon_args, int fanout,
      const std::string& report_host, cluster::Port report_port,
      obs::SpanId parent_span,
      std::vector<cluster::ChannelPtr>* sessions,
      std::function<void(const std::string&)> on_session_lost,
      std::function<void(Status)> on_spawned) {
    auto remaining = std::make_shared<int>(static_cast<int>(chunks.size()));
    auto failed = std::make_shared<bool>(false);
    if (chunks.empty()) {
      on_spawned(Status::ok());
      return;
    }
    for (auto& chunk : chunks) {
      std::vector<std::string> agent_args;
      agent_args.push_back("--exe=" + exe);
      agent_args.push_back("--fanout=" + std::to_string(fanout));
      agent_args.push_back("--report-host=" + report_host);
      agent_args.push_back("--report-port=" + std::to_string(report_port));
      agent_args.push_back("--hosts=" + join_csv(chunk));
      for (const auto& a : daemon_args) {
        agent_args.push_back("--daemon-arg=" + a);
      }
      // Note: the callback captures the host by copy *before* the call -
      // moving it into the capture would race the host argument (argument
      // evaluation order is unspecified).
      const std::string agent_host = chunk.front();
      self.machine().count("rsh.agents_launched");
      if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
        // The child agent on agent_host parents its span here (per-level
        // fan-out chain, mirroring the rm tree's "rmtree:" anchors).
        tracer->set_anchor("rshtree:" + agent_host, parent_span);
      }
      RshSession::run(
          self, agent_host, "rsh_tree_agent", std::move(agent_args),
          [&self, sessions, remaining, failed, on_spawned, on_session_lost,
           agent_host](RemoteExec res) {
            if (!res.status.is_ok()) {
              *failed = true;
            } else {
              if (sessions != nullptr) sessions->push_back(res.session);
              if (on_session_lost) {
                self.set_channel_handler(
                    res.session, nullptr,
                    [on_session_lost, agent_host](
                        const cluster::ChannelPtr&) {
                      on_session_lost(agent_host);
                    });
              }
            }
            *remaining -= 1;
            if (*remaining == 0) {
              on_spawned(*failed ? Status(Rc::Esubcom,
                                          "tree agent launch failed")
                                 : Status::ok());
            }
          });
    }
  }
};

}  // namespace

/// FE-side collector: listens for TreeAcks from the root agents. Declared at
/// namespace scope (not anonymous) so the registry below can name it.
struct TreeCollector {
  cluster::Process& self;
  int expected;
  TreeRshLauncher::Callback cb;
  LaunchOutcome outcome;
  int received = 0;
  bool finished = false;
  std::set<std::string> acked_hosts;
  obs::SpanId span = obs::kNoSpan;

  explicit TreeCollector(cluster::Process& s) : self(s), expected(0) {}

  void on_ack(const TreeAck& ack, const cluster::ChannelPtr& ch) {
    if (finished) return;
    received += 1;
    acked_hosts.insert(ack.agent_host);
    outcome.ack_channels.push_back(ch);
    if (!ack.ok && outcome.status.is_ok()) {
      outcome.status = Status(Rc::Esubcom, ack.error);
    }
    for (const auto& d : ack.daemons) outcome.daemons.push_back(d);
    if (received == expected) finish();
  }

  /// A root agent's rsh session dropped. Before its ack that means the
  /// subtree died mid-bootstrap: stop expecting its ack and record the
  /// error, but keep collecting the surviving subtrees - finishing
  /// immediately would drop their still-in-flight sessions and ack
  /// channels (the keepalives), leaving unreapable daemons behind. After
  /// the ack the loss is routine churn.
  void on_session_lost(const std::string& host) {
    if (finished || acked_hosts.count(host) != 0) return;
    if (outcome.status.is_ok()) {
      outcome.status = Status(Rc::Esubcom, "lost tree agent on " + host);
    }
    expected -= 1;
    if (received >= expected) finish();
  }

  void fail(Status st) {
    if (finished) return;
    outcome.status = st;
    finish();
  }

  void finish();  // defined after the registry: deregisters this collector
};

namespace {
/// Per-process collector registry: lets the owning program hand incoming
/// report messages to the launcher with one handle_report() call.
std::map<cluster::Pid, std::shared_ptr<TreeCollector>>& collector_registry() {
  static std::map<cluster::Pid, std::shared_ptr<TreeCollector>> reg;
  return reg;
}
}  // namespace

void TreeCollector::finish() {
  finished = true;
  if (obs::Tracer* tracer = self.machine().tracer();
      tracer != nullptr && span != obs::kNoSpan) {
    tracer->end_span(span, outcome.status.is_ok()
                               ? "daemons=" +
                                     std::to_string(outcome.daemons.size())
                               : "failed: " + outcome.status.message());
  }
  // Deregister on every completion path (success *and* fail()); a stale
  // entry would pin this collector - and its Process reference - in the
  // static registry past the process's lifetime.
  collector_registry().erase(self.pid());
  self.stop_listening(kTreeReportPort);
  cb(std::move(outcome));
}

void TreeRshLauncher::launch(cluster::Process& self,
                             std::vector<std::string> hosts,
                             std::string daemon_exe,
                             std::vector<std::string> daemon_args, int fanout,
                             Callback cb) {
  if (hosts.empty()) {
    cb(LaunchOutcome{});
    return;
  }
  auto collector = std::make_shared<TreeCollector>(self);
  collector->cb = std::move(cb);

  Status lst = self.listen(kTreeReportPort);
  if (!lst.is_ok()) {
    LaunchOutcome out;
    out.status = lst;
    collector->cb(std::move(out));
    return;
  }
  auto chunks = chunk_hosts(hosts, 0, fanout);
  collector->expected = static_cast<int>(chunks.size());
  collector_registry()[self.pid()] = collector;

  if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
    const std::string session =
        arg_value(daemon_args, "--lmon-session=").value_or("");
    collector->span = tracer->begin_span(
        "rsh.tree_launch", "rsh", static_cast<int>(self.node().id()),
        self.pid(), tracer->anchor("cospawn:" + session),
        "hosts=" + std::to_string(hosts.size()) +
            " fanout=" + std::to_string(fanout));
  }

  SubtreeLauncher::launch_chunks(
      self, std::move(chunks), daemon_exe, daemon_args, fanout,
      self.node().hostname(), kTreeReportPort, collector->span,
      &collector->outcome.sessions,
      [collector](const std::string& host) {
        collector->on_session_lost(host);
      },
      [collector](Status st) {
        if (!st.is_ok()) collector->fail(st);
      });
}

bool TreeRshLauncher::handle_report(cluster::Process& self,
                                    const cluster::ChannelPtr& ch,
                                    const cluster::Message& msg) {
  auto it = collector_registry().find(self.pid());
  if (it == collector_registry().end() || it->second == nullptr ||
      it->second->finished) {
    return false;
  }
  // Keep the collector alive across on_ack: finish() erases the registry
  // entry, which would otherwise drop the last reference mid-call.
  auto collector = it->second;
  auto ack = TreeAck::decode(msg);
  if (!ack) return false;
  collector->on_ack(*ack, ch);
  return true;
}

// --- tree agent program ------------------------------------------------------------

void TreeAgent::on_start(cluster::Process& self) {
  const auto& args = self.args();
  const std::string exe = arg_value(args, "--exe=").value_or("");
  const int fanout = static_cast<int>(arg_int(args, "--fanout=").value_or(2));
  report_host_ = arg_value(args, "--report-host=").value_or("");
  report_port_ = static_cast<cluster::Port>(
      arg_int(args, "--report-port=").value_or(kTreeReportPort));
  auto hosts = split_csv(arg_value(args, "--hosts=").value_or(""));
  std::vector<std::string> daemon_args = arg_list(args, "--daemon-arg=");
  ack_.ok = true;

  if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
    span_ = tracer->begin_span(
        "rsh.agent", "rsh", static_cast<int>(self.node().id()), self.pid(),
        tracer->anchor("rshtree:" + self.node().hostname()),
        "hosts=" + std::to_string(hosts.size()));
    // The daemon spawned below parents its bootstrap span on this agent.
    const std::string session =
        arg_value(daemon_args, "--lmon-session=").value_or("");
    tracer->set_anchor("spawn:" + session + ":" + self.node().hostname(),
                       span_);
  }

  // Spawn the local daemon.
  const cluster::ProgramImage* image =
      exe.empty() ? nullptr : self.machine().find_program(exe);
  if (image == nullptr) {
    ack_.ok = false;
    ack_.error = "tree agent: no such daemon executable: " + exe;
    local_done_ = true;
    maybe_report(self);
    return;
  }
  cluster::SpawnOptions opts;
  opts.executable = exe;
  opts.image_mb = image->image_mb;
  opts.args = daemon_args;
  // The daemon must not outlive this agent: tree teardown reaps agents
  // (cleanly via ack-channel loss or hard via rshd session loss), and
  // either way the daemon has to go with it.
  opts.die_with_parent = true;
  auto prog = image->factory(opts.args);
  auto res = self.spawn_child(std::move(prog), std::move(opts));
  if (!res.is_ok()) {
    ack_.ok = false;
    ack_.error = res.status.message();
  } else {
    daemon_pid_ = res.value;
    ack_.daemons.emplace_back(self.node().hostname(), res.value);
  }
  local_done_ = true;

  // Recurse into the subtree.
  auto chunks = chunk_hosts(hosts, 1, fanout);
  awaiting_children_ = static_cast<int>(chunks.size());
  if (awaiting_children_ > 0) {
    (void)self.listen(kTreeAgentPort);
    SubtreeLauncher::launch_chunks(
        self, std::move(chunks), exe, daemon_args, fanout,
        self.node().hostname(), kTreeAgentPort, span_, &child_sessions_,
        [this, &self](const std::string& host) {
          on_child_session_lost(self, host);
        },
        [this, &self](Status st) {
          if (!st.is_ok()) {
            ack_.ok = false;
            if (ack_.error.empty()) ack_.error = st.message();
            awaiting_children_ = 0;
            maybe_report(self);
          }
        });
  }
  maybe_report(self);
}

void TreeAgent::on_message(cluster::Process& self,
                           const cluster::ChannelPtr& ch,
                           cluster::Message msg) {
  auto ack = TreeAck::decode(msg);
  if (!ack) return;
  child_acks_.push_back(ch);
  acked_hosts_.insert(ack->agent_host);
  if (!ack->ok) {
    ack_.ok = false;
    if (ack_.error.empty()) ack_.error = ack->error;
  }
  for (const auto& d : ack->daemons) ack_.daemons.push_back(d);
  awaiting_children_ -= 1;
  maybe_report(self);
}

void TreeAgent::on_child_session_lost(cluster::Process& self,
                                      const std::string& host) {
  // A child agent's rsh session dropped. If its ack already arrived this
  // is teardown churn; before the ack the whole child subtree is dead
  // (mid-bootstrap fault), so stop waiting for it and report the failure
  // upward. The dead agent's own subtree reaps itself: its daemon dies
  // with it (die_with_parent), its children lose their ack channels and
  // cascade, and its rshd sessions hard-kill whatever remains.
  if (reported_ || acked_hosts_.count(host) != 0) return;
  ack_.ok = false;
  if (ack_.error.empty()) ack_.error = "lost tree agent on " + host;
  awaiting_children_ -= 1;
  self.machine().count("rsh.subtree_losses");
  self.machine().flight_record(self.pid(), "rsh_tree_agent",
                               "lost tree agent on " + host);
  maybe_report(self);
}

void TreeAgent::maybe_report(cluster::Process& self) {
  if (reported_ || !local_done_ || awaiting_children_ > 0) return;
  reported_ = true;
  if (obs::Tracer* tracer = self.machine().tracer();
      tracer != nullptr && span_ != obs::kNoSpan) {
    tracer->end_span(span_, ack_.ok ? "ok" : "failed: " + ack_.error);
  }
  ack_.agent_host = self.node().hostname();
  if (report_host_.empty()) return;
  self.connect(
      report_host_, report_port_,
      [this, &self](Status st, cluster::ChannelPtr ch) {
        if (!st.is_ok()) return;
        // The ack channel doubles as the session keepalive: when the
        // launcher (or parent agent) closes it, reap the local daemon and
        // cascade the close down the subtree. This mirrors how rshd kills
        // a remote command on session loss.
        self.set_channel_handler(
            ch, nullptr,
            [this, &self](const cluster::ChannelPtr&) {
              shutdown_subtree(self);
            });
        self.send(ch, ack_.encode());
      });
}

void TreeAgent::shutdown_subtree(cluster::Process& self) {
  if (daemon_pid_ != cluster::kInvalidPid) {
    cluster::Process* d = self.machine().find_process(daemon_pid_);
    if (d != nullptr && d->state() != cluster::ProcState::Exited) {
      d->exit(9);
    }
    daemon_pid_ = cluster::kInvalidPid;
  }
  // Close child ack channels first so child agents reap their daemons
  // before the rsh-session closes (queued behind these) hard-kill them.
  for (auto& ch : child_acks_) {
    if (ch != nullptr && ch->is_open()) self.close_channel(ch);
  }
  child_acks_.clear();
  self.exit(0);
}

// --- comm::LaunchStrategy bindings -------------------------------------------

namespace {

/// Maps an rsh LaunchOutcome into the strategy result, assigning fabric
/// ranks by the host's position in the bootstrap host list.
comm::LaunchResult outcome_to_result(const comm::LaunchRequest& req,
                                     LaunchOutcome out) {
  comm::LaunchResult res;
  res.status = out.status;
  res.daemons.reserve(out.daemons.size());
  for (const auto& [host, pid] : out.daemons) {
    std::int32_t rank = -1;
    for (std::size_t i = 0; i < req.bootstrap.hosts.size(); ++i) {
      if (req.bootstrap.hosts[i] == host) {
        rank = static_cast<std::int32_t>(i);
        break;
      }
    }
    res.daemons.push_back(rm::TaskDesc{host, req.daemon_exe, pid, rank});
  }
  std::sort(res.daemons.begin(), res.daemons.end(),
            [](const rm::TaskDesc& a, const rm::TaskDesc& b) {
              return a.rank < b.rank;
            });
  return res;
}

void drop_sessions(cluster::Process& self,
                   std::vector<cluster::ChannelPtr>& sessions,
                   std::function<void(Status)> cb) {
  for (auto& ch : sessions) {
    if (ch != nullptr && ch->is_open()) self.close_channel(ch);
  }
  sessions.clear();
  if (cb) cb(Status::ok());
}

}  // namespace

void SerialRshStrategy::launch(cluster::Process& self, comm::LaunchRequest req,
                               Callback cb) {
  std::vector<LaunchTarget> targets;
  targets.reserve(req.bootstrap.hosts.size());
  for (std::size_t r = 0; r < req.bootstrap.hosts.size(); ++r) {
    auto args = comm::bootstrap_args(req.bootstrap,
                                     static_cast<std::uint32_t>(r));
    args.insert(args.end(), req.daemon_args.begin(), req.daemon_args.end());
    targets.push_back(LaunchTarget{req.bootstrap.hosts[r], req.daemon_exe,
                                   std::move(args)});
  }
  obs::SpanId span = obs::kNoSpan;
  if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
    span = tracer->begin_span(
        "rsh.serial_launch", "rsh", static_cast<int>(self.node().id()),
        self.pid(), tracer->anchor("cospawn:" + req.bootstrap.session),
        "hosts=" + std::to_string(req.bootstrap.hosts.size()));
    // Serial rsh has no per-host agent; every daemon parents on this span.
    for (const auto& host : req.bootstrap.hosts) {
      tracer->set_anchor("spawn:" + req.bootstrap.session + ":" + host, span);
    }
  }
  self.machine().count("rsh.serial_targets",
                       static_cast<double>(req.bootstrap.hosts.size()));
  SerialRshLauncher::launch(
      self, std::move(targets),
      [this, &self, span, req = std::move(req),
       cb = std::move(cb)](LaunchOutcome out) {
        if (obs::Tracer* tracer = self.machine().tracer();
            tracer != nullptr && span != obs::kNoSpan) {
          tracer->end_span(
              span, out.status.is_ok()
                        ? "daemons=" + std::to_string(out.daemons.size())
                        : "failed: " + out.status.message());
        }
        sessions_ = std::move(out.sessions);
        if (cb) cb(outcome_to_result(req, std::move(out)));
      });
}

void SerialRshStrategy::teardown(cluster::Process& self,
                                 std::function<void(Status)> cb) {
  drop_sessions(self, sessions_, std::move(cb));
}

void TreeRshStrategy::launch(cluster::Process& self, comm::LaunchRequest req,
                             Callback cb) {
  // One argv for everyone: bootstrap args without an explicit rank, daemons
  // resolve their rank from the host list.
  auto daemon_args = comm::bootstrap_args(req.bootstrap, std::nullopt);
  daemon_args.insert(daemon_args.end(), req.daemon_args.begin(),
                     req.daemon_args.end());
  const int fanout =
      req.launch_fanout == 0 ? 2 : static_cast<int>(req.launch_fanout);
  // Copy out of `req` before the call: the callback captures req by move,
  // and argument evaluation order is unspecified.
  auto hosts = req.bootstrap.hosts;
  auto daemon_exe = req.daemon_exe;
  TreeRshLauncher::launch(
      self, std::move(hosts), std::move(daemon_exe), std::move(daemon_args),
      fanout,
      [this, req = std::move(req), cb = std::move(cb)](LaunchOutcome out) {
        sessions_ = std::move(out.sessions);
        ack_channels_ = std::move(out.ack_channels);
        if (cb) cb(outcome_to_result(req, std::move(out)));
      });
}

void TreeRshStrategy::teardown(cluster::Process& self,
                               std::function<void(Status)> cb) {
  // Closing the ack channels tells the root agents to reap their daemons
  // and cascade the shutdown; the rsh sessions close behind them (their
  // close events queue after the ack closes) as a hard-kill backstop.
  for (auto& ch : ack_channels_) {
    if (ch != nullptr && ch->is_open()) self.close_channel(ch);
  }
  ack_channels_.clear();
  drop_sessions(self, sessions_, std::move(cb));
}

void install_tree_agent(cluster::Machine& machine) {
  cluster::ProgramImage image;
  image.image_mb = 2.0;
  image.factory = [](const std::vector<std::string>&) {
    return std::make_unique<TreeAgent>();
  };
  machine.install_program("rsh_tree_agent", std::move(image));
}

}  // namespace lmon::rsh
