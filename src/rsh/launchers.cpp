#include "rsh/launchers.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "cluster/machine.hpp"
#include "common/argparse.hpp"
#include "simkernel/log.hpp"

namespace lmon::rsh {

// --- serial -----------------------------------------------------------------

struct SerialRshLauncher::State {
  std::vector<LaunchTarget> targets;
  std::size_t next_index = 0;
  LaunchOutcome outcome;
  Callback cb;
};

void SerialRshLauncher::launch(cluster::Process& self,
                               std::vector<LaunchTarget> targets,
                               Callback cb) {
  auto st = std::make_shared<State>();
  st->targets = std::move(targets);
  st->cb = std::move(cb);
  st->outcome.status = Status::ok();
  next(self, std::move(st));
}

void SerialRshLauncher::next(cluster::Process& self,
                             std::shared_ptr<State> st) {
  if (st->next_index >= st->targets.size()) {
    st->cb(std::move(st->outcome));
    return;
  }
  const LaunchTarget& t = st->targets[st->next_index];
  RshSession::run(self, t.host, t.executable, t.args,
                  [&self, st](RemoteExec res) mutable {
                    if (!res.status.is_ok()) {
                      // One failed fork aborts the whole ad hoc launch; the
                      // already-started daemons stay up (leaked), exactly the
                      // unpleasant failure mode the paper describes.
                      st->outcome.status = res.status;
                      st->cb(std::move(st->outcome));
                      return;
                    }
                    st->outcome.daemons.emplace_back(
                        st->targets[st->next_index].host, res.remote_pid);
                    st->outcome.sessions.push_back(res.session);
                    st->next_index += 1;
                    next(self, st);
                  });
}

// --- tree -----------------------------------------------------------------------

namespace {

/// Splits hosts[1..] (or hosts[0..] at the root) into up to `fanout`
/// contiguous chunks.
std::vector<std::vector<std::string>> chunk_hosts(
    const std::vector<std::string>& hosts, std::size_t begin, int fanout) {
  std::vector<std::vector<std::string>> chunks;
  if (begin >= hosts.size()) return chunks;
  const std::size_t rest = hosts.size() - begin;
  const std::size_t nchunks =
      std::min<std::size_t>(fanout <= 0 ? 1 : static_cast<std::size_t>(fanout),
                            rest);
  chunks.resize(nchunks);
  const std::size_t base = rest / nchunks;
  const std::size_t extra = rest % nchunks;
  std::size_t pos = begin;
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    chunks[c].assign(hosts.begin() + static_cast<std::ptrdiff_t>(pos),
                     hosts.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return chunks;
}

std::string join_csv(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& s : v) {
    if (!out.empty()) out += ',';
    out += s;
  }
  return out;
}

/// Launches agents for each chunk sequentially via rsh and wires their acks
/// into completion bookkeeping shared by the FE facade and TreeAgent.
struct SubtreeLauncher {
  static void launch_chunks(
      cluster::Process& self,
      std::vector<std::vector<std::string>> chunks, const std::string& exe,
      const std::vector<std::string>& daemon_args, int fanout,
      const std::string& report_host, cluster::Port report_port,
      std::vector<cluster::ChannelPtr>* sessions,
      std::function<void(Status)> on_spawned) {
    auto remaining = std::make_shared<int>(static_cast<int>(chunks.size()));
    auto failed = std::make_shared<bool>(false);
    if (chunks.empty()) {
      on_spawned(Status::ok());
      return;
    }
    for (auto& chunk : chunks) {
      std::vector<std::string> agent_args;
      agent_args.push_back("--exe=" + exe);
      agent_args.push_back("--fanout=" + std::to_string(fanout));
      agent_args.push_back("--report-host=" + report_host);
      agent_args.push_back("--report-port=" + std::to_string(report_port));
      agent_args.push_back("--hosts=" + join_csv(chunk));
      for (const auto& a : daemon_args) {
        agent_args.push_back("--daemon-arg=" + a);
      }
      RshSession::run(
          self, chunk.front(), "rsh_tree_agent", std::move(agent_args),
          [sessions, remaining, failed, on_spawned](RemoteExec res) {
            if (!res.status.is_ok()) {
              *failed = true;
            } else if (sessions != nullptr) {
              sessions->push_back(res.session);
            }
            *remaining -= 1;
            if (*remaining == 0) {
              on_spawned(*failed ? Status(Rc::Esubcom,
                                          "tree agent launch failed")
                                 : Status::ok());
            }
          });
    }
  }
};

}  // namespace

/// FE-side collector: listens for TreeAcks from the root agents. Declared at
/// namespace scope (not anonymous) so the registry below can name it.
struct TreeCollector {
  cluster::Process& self;
  int expected;
  TreeRshLauncher::Callback cb;
  LaunchOutcome outcome;
  int received = 0;
  bool finished = false;

  explicit TreeCollector(cluster::Process& s) : self(s), expected(0) {}

  void on_ack(const TreeAck& ack) {
    if (finished) return;
    received += 1;
    if (!ack.ok && outcome.status.is_ok()) {
      outcome.status = Status(Rc::Esubcom, ack.error);
    }
    for (const auto& d : ack.daemons) outcome.daemons.push_back(d);
    if (received == expected) finish();
  }

  void fail(Status st) {
    if (finished) return;
    outcome.status = st;
    finish();
  }

  void finish() {
    finished = true;
    self.stop_listening(kTreeReportPort);
    cb(std::move(outcome));
  }
};

namespace {
/// Per-process collector registry: lets the owning program hand incoming
/// report messages to the launcher with one handle_report() call.
std::map<cluster::Pid, std::shared_ptr<TreeCollector>>& collector_registry() {
  static std::map<cluster::Pid, std::shared_ptr<TreeCollector>> reg;
  return reg;
}
}  // namespace

void TreeRshLauncher::launch(cluster::Process& self,
                             std::vector<std::string> hosts,
                             std::string daemon_exe,
                             std::vector<std::string> daemon_args, int fanout,
                             Callback cb) {
  if (hosts.empty()) {
    cb(LaunchOutcome{Status::ok(), {}, {}});
    return;
  }
  auto collector = std::make_shared<TreeCollector>(self);
  collector->cb = std::move(cb);

  Status lst = self.listen(kTreeReportPort);
  if (!lst.is_ok()) {
    collector->cb(LaunchOutcome{lst, {}, {}});
    return;
  }
  auto chunks = chunk_hosts(hosts, 0, fanout);
  collector->expected = static_cast<int>(chunks.size());
  collector_registry()[self.pid()] = collector;

  SubtreeLauncher::launch_chunks(
      self, std::move(chunks), daemon_exe, daemon_args, fanout,
      self.node().hostname(), kTreeReportPort, &collector->outcome.sessions,
      [collector](Status st) {
        if (!st.is_ok()) collector->fail(st);
      });
}

bool TreeRshLauncher::handle_report(cluster::Process& self,
                                    const cluster::Message& msg) {
  auto it = collector_registry().find(self.pid());
  if (it == collector_registry().end() || it->second == nullptr ||
      it->second->finished) {
    return false;
  }
  auto ack = TreeAck::decode(msg);
  if (!ack) return false;
  it->second->on_ack(*ack);
  if (it->second->finished) collector_registry().erase(self.pid());
  return true;
}

// --- tree agent program ------------------------------------------------------------

void TreeAgent::on_start(cluster::Process& self) {
  const auto& args = self.args();
  const std::string exe = arg_value(args, "--exe=").value_or("");
  const int fanout = static_cast<int>(arg_int(args, "--fanout=").value_or(2));
  report_host_ = arg_value(args, "--report-host=").value_or("");
  report_port_ = static_cast<cluster::Port>(
      arg_int(args, "--report-port=").value_or(kTreeReportPort));
  auto hosts = split_csv(arg_value(args, "--hosts=").value_or(""));
  std::vector<std::string> daemon_args;
  for (const auto& a : args) {
    constexpr std::string_view kDaemonArg = "--daemon-arg=";
    if (a.rfind(kDaemonArg, 0) == 0) {
      daemon_args.push_back(a.substr(kDaemonArg.size()));
    }
  }
  ack_.ok = true;

  // Spawn the local daemon.
  const cluster::ProgramImage* image =
      exe.empty() ? nullptr : self.machine().find_program(exe);
  if (image == nullptr) {
    ack_.ok = false;
    ack_.error = "tree agent: no such daemon executable: " + exe;
    local_done_ = true;
    maybe_report(self);
    return;
  }
  cluster::SpawnOptions opts;
  opts.executable = exe;
  opts.image_mb = image->image_mb;
  opts.args = daemon_args;
  auto prog = image->factory(opts.args);
  auto res = self.spawn_child(std::move(prog), std::move(opts));
  if (!res.is_ok()) {
    ack_.ok = false;
    ack_.error = res.status.message();
  } else {
    ack_.daemons.emplace_back(self.node().hostname(), res.value);
  }
  local_done_ = true;

  // Recurse into the subtree.
  auto chunks = chunk_hosts(hosts, 1, fanout);
  awaiting_children_ = static_cast<int>(chunks.size());
  if (awaiting_children_ > 0) {
    (void)self.listen(kTreeAgentPort);
    SubtreeLauncher::launch_chunks(
        self, std::move(chunks), exe, daemon_args, fanout,
        self.node().hostname(), kTreeAgentPort, &child_sessions_,
        [this, &self](Status st) {
          if (!st.is_ok()) {
            ack_.ok = false;
            if (ack_.error.empty()) ack_.error = st.message();
            awaiting_children_ = 0;
            maybe_report(self);
          }
        });
  }
  maybe_report(self);
}

void TreeAgent::on_message(cluster::Process& self,
                           const cluster::ChannelPtr& ch,
                           cluster::Message msg) {
  auto ack = TreeAck::decode(msg);
  (void)ch;
  if (!ack) return;
  if (!ack->ok) {
    ack_.ok = false;
    if (ack_.error.empty()) ack_.error = ack->error;
  }
  for (const auto& d : ack->daemons) ack_.daemons.push_back(d);
  awaiting_children_ -= 1;
  maybe_report(self);
}

void TreeAgent::maybe_report(cluster::Process& self) {
  if (reported_ || !local_done_ || awaiting_children_ > 0) return;
  reported_ = true;
  if (report_host_.empty()) return;
  self.connect(report_host_, report_port_,
               [this, &self](Status st, cluster::ChannelPtr ch) {
                 if (!st.is_ok()) return;
                 self.send(ch, ack_.encode());
               });
}

void install_tree_agent(cluster::Machine& machine) {
  cluster::ProgramImage image;
  image.image_mb = 2.0;
  image.factory = [](const std::vector<std::string>&) {
    return std::make_unique<TreeAgent>();
  };
  machine.install_program("rsh_tree_agent", std::move(image));
}

}  // namespace lmon::rsh
