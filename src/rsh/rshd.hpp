// rshd.hpp - remote shell daemon, one per node.
//
// The substrate behind "ad hoc" tool daemon launching (paper §2): tools
// combine rsh-like remote access with manual protocols. rshd accepts one
// exec request per session, spawns the command, and ties the command's
// lifetime to the session (closing the rsh connection kills the remote
// process, like losing the controlling terminal).
#pragma once

#include <map>
#include <string>

#include "cluster/process.hpp"
#include "rsh/protocol.hpp"

namespace lmon::rsh {

class Rshd : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "rshd"; }

  void on_start(cluster::Process& self) override;
  void on_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                  cluster::Message msg) override;
  void on_channel_closed(cluster::Process& self,
                         const cluster::ChannelPtr& ch) override;
  /// The session works both ways: when the spawned command exits, the rsh
  /// session EOFs at the client (like the real rsh returning), so launch
  /// owners can detect a dead remote mid-protocol.
  void on_child_exit(cluster::Process& self, cluster::Pid child,
                     int exit_code) override;

 private:
  struct Session {
    cluster::Pid pid = cluster::kInvalidPid;
    cluster::ChannelPtr channel;
  };
  /// Session channel -> remote command it spawned (channel retained so the
  /// child-exit path can hang the session up).
  std::map<cluster::Channel::Id, Session> sessions_;
};

/// Installs an rshd on every node (compute + middleware + front end).
Status install(cluster::Machine& machine);

}  // namespace lmon::rsh
