// client.hpp - client side of an rsh remote execution.
//
// RshSession::run models `fork(); exec("rsh", host, cmd...)` from a tool
// front end: it forks a local helper child (paying the fork cost and
// consuming a slot against the per-user process limit - the resource whose
// exhaustion makes the ad hoc approach "consistently fail" at 512 nodes in
// the paper), pays the connection/authentication cost, and asks the remote
// rshd to spawn the command. The session channel stays open for the life of
// the remote process; closing it (or the helper dying) kills the remote
// command.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cluster/process.hpp"
#include "rsh/protocol.hpp"

namespace lmon::rsh {

/// Inert stand-in for the rsh client binary: exists only to occupy a process
/// slot and keep the session alive, like the real blocking `rsh` child.
class RshHelper : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "rsh"; }
  void on_start(cluster::Process& self) override { (void)self; }
};

struct RemoteExec {
  Status status;
  cluster::Pid remote_pid = cluster::kInvalidPid;
  cluster::Pid helper_pid = cluster::kInvalidPid;
  cluster::ChannelPtr session;  ///< close it to terminate the remote command
};

class RshSession {
 public:
  using Callback = std::function<void(RemoteExec)>;

  /// Runs `executable args...` on `host` on behalf of `self`. The callback
  /// fires in `self`'s context. Failure modes: Rc::Esys when the local fork
  /// fails (process limit), Rc::Esubcom when the host/rshd is unreachable or
  /// the remote spawn fails.
  ///
  /// Message routing on the session channel is claimed by this call until
  /// the ExecResp arrives, then released to the caller (who may register a
  /// handler to talk to the remote process).
  static void run(cluster::Process& self, const std::string& host,
                  const std::string& executable,
                  std::vector<std::string> args, Callback cb);

 private:
  static void reap_helper(cluster::Process& self, cluster::Pid helper);
};

}  // namespace lmon::rsh
