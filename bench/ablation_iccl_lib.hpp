// ablation_iccl_lib.hpp - the ICCL eager/rendezvous broadcast ablation
// shared by bench_ablation_iccl and the bench-schema golden test.
//
// The paper attributes collective latency to the root daemon serializing
// its per-child sends; the ICCL now switches between two protocols for
// exactly that fan-out (see "Eager/rendezvous collectives" in
// docs/ARCHITECTURE.md). This sweep measures fleet-wide broadcast latency
// (master issue to last delivery) for payload x topology x protocol, pins
// every point against core::PerfModel::collective_bcast(), and compares the
// measured eager->rendezvous crossover payload against the analytic
// collective_crossover() solver. Protocols are forced through the real
// session option (SpawnConfig::rndv_threshold_bytes), so the sweep drives
// the identical code path tools use.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/ablation_rsh_lib.hpp"  // jsonv helpers + json_shape
#include "bench/bench_util.hpp"
#include "core/be_api.hpp"
#include "core/fe_api.hpp"
#include "core/perf_model.hpp"

namespace lmon::bench {

struct IcclAblationOptions {
  int nodes = 32;
  /// Payload grid (bytes), ascending. Starts at the model solver's floor
  /// (1 KiB) so "crossover below the grid" means the same thing on both
  /// sides of the comparison.
  std::vector<std::size_t> payloads = {1u << 10, 4u << 10,  16u << 10,
                                       64u << 10, 256u << 10, 1u << 20,
                                       4u << 20};
  std::vector<comm::TopologySpec> topologies = {
      {comm::TopologyKind::KAry, 2},
      {comm::TopologyKind::KAry, 4},
      {comm::TopologyKind::KAry, 8},
      {comm::TopologyKind::Binomial, 0},
      {comm::TopologyKind::Flat, 0}};

  static IcclAblationOptions smoke() {
    IcclAblationOptions o;
    o.nodes = 8;
    o.payloads = {1u << 10, 64u << 10, 1u << 20};
    o.topologies = {{comm::TopologyKind::KAry, 2},
                    {comm::TopologyKind::Flat, 0}};
    return o;
  }
};

struct IcclAblationPoint {
  std::string topology;
  std::string protocol;  ///< "eager" | "rendezvous"
  std::size_t payload_bytes = 0;
  bool measured_ok = false;
  double measured_s = -1.0;
  double model_s = -1.0;
  double residual_pct = 0.0;  ///< (model - measured) / measured * 100
};

struct IcclCrossoverPoint {
  std::string topology;
  /// Interpolated payload where measured rendezvous overtakes measured
  /// eager (-1: rendezvous never wins on the grid).
  double measured_bytes = -1.0;
  /// PerfModel::collective_crossover() (-1: never in range).
  double model_bytes = -1.0;
  double agreement_pct = 0.0;  ///< (model - measured) / measured * 100
  /// Rendezvous beat eager at the largest swept payload on this topology.
  bool rendezvous_wins_at_max = false;
};

/// One model-only scatter point: the live fabric has no rendezvous scatter
/// (payload parts ride eager frames at every threshold), so the sweep asks
/// PerfModel::collective_scatter() what a chunk-streamed scatter *would*
/// cost and whether it would ever beat the shipping eager path.
struct ScatterModelPoint {
  std::string topology;
  std::size_t payload_bytes = 0;  ///< per-rank part size
  double eager_s = -1.0;
  double rndv_s = -1.0;
};

struct ScatterCrossoverPoint {
  std::string topology;
  /// collective_scatter_crossover() (-1: eager wins through the grid max,
  /// i.e. a rendezvous scatter would never pay off on this fabric).
  double model_bytes = -1.0;
  bool rndv_wins_at_max = false;
};

struct IcclAblationReport {
  int nodes = 0;
  std::uint32_t chunk_bytes = 0;
  std::vector<std::size_t> payloads;
  std::vector<std::string> topologies;
  std::vector<std::string> protocols;
  std::vector<IcclAblationPoint> points;
  std::vector<IcclCrossoverPoint> crossovers;
  std::vector<ScatterModelPoint> scatter_model;
  std::vector<ScatterCrossoverPoint> scatter_crossovers;
  /// A hypothetical rendezvous scatter would win somewhere on the sweep -
  /// the go/no-go answer for ever implementing one.
  bool rendezvous_scatter_ever_wins = false;
  double max_abs_residual_pct = 0.0;
  double max_abs_crossover_pct = 0.0;
  bool rendezvous_wins_at_max_everywhere = false;
  int measurement_failures = 0;
};

namespace iccl_sweep {

/// Shared observation state for one (topology, protocol) session: per-round
/// master issue time and fleet-wide last delivery.
struct SweepState {
  std::vector<std::size_t> payloads;
  std::vector<sim::Time> issue;
  std::vector<sim::Time> last_delivery;
  std::vector<int> delivered;
  int ranks_done = 0;
};

/// BE daemon running the scripted broadcast sweep. Non-masters register the
/// round's delivery waiter *before* entering the barrier, so a rendezvous
/// payload racing ahead of the (staggered, eager) barrier-release wave is
/// still timestamped at true arrival; the master issues only after the
/// barrier, i.e. after every rank is armed.
class SweepDaemon : public cluster::Program {
 public:
  explicit SweepDaemon(SweepState* state) : state_(state) {}
  [[nodiscard]] std::string_view name() const override { return "sweep_be"; }

  void on_start(cluster::Process& self) override {
    be_ = std::make_unique<core::BackEnd>(self);
    core::BackEnd::Callbacks cbs;
    cbs.on_init = [](const core::Rpdtab&, const Bytes&,
                     std::function<void(Status)> done) { done(Status::ok()); };
    cbs.on_ready = [this, &self](Status st) {
      if (!st.is_ok()) return;
      round(self, 0);
    };
    (void)be_->init(std::move(cbs));
  }

  static void install(cluster::Machine& machine, SweepState* state) {
    cluster::ProgramImage image;
    image.image_mb = 2.0;
    image.factory = [state](const std::vector<std::string>&) {
      return std::make_unique<SweepDaemon>(state);
    };
    machine.install_program("sweep_be", std::move(image));
  }

 private:
  void round(cluster::Process& self, std::size_t i) {
    if (i == state_->payloads.size()) {
      state_->ranks_done += 1;
      return;
    }
    auto on_delivered = [this, &self, i](const Bytes&) {
      state_->last_delivery[i] =
          std::max(state_->last_delivery[i], self.sim().now());
      state_->delivered[i] += 1;
      round(self, i + 1);
    };
    if (be_->is_master()) {
      be_->barrier([this, &self, i, on_delivered] {
        state_->issue[i] = self.sim().now();
        be_->broadcast(Bytes(state_->payloads[i], 0xA5), on_delivered);
      });
    } else {
      be_->broadcast({}, on_delivered);
      be_->barrier([] {});
    }
  }

  SweepState* state_;
  std::unique_ptr<core::BackEnd> be_;
};

}  // namespace iccl_sweep

/// Runs one session pinned to a protocol (threshold 1 forces rendezvous,
/// UINT32_MAX forces eager) and measures every payload round. Returns one
/// latency (seconds) per payload; all -1 when the session fails.
inline std::vector<double> measure_bcast_sweep(
    const comm::TopologySpec& topo, int nodes, std::uint32_t threshold,
    const std::vector<std::size_t>& payloads) {
  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  TestCluster tc(nodes, 0, costs);
  ScopedTrace trace(tc);
  iccl_sweep::SweepState state;
  state.payloads = payloads;
  state.issue.assign(payloads.size(), 0);
  state.last_delivery.assign(payloads.size(), 0);
  state.delivered.assign(payloads.size(), 0);
  iccl_sweep::SweepDaemon::install(tc.machine, &state);

  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "sweep_be";
    cfg.topology = topo;
    cfg.rndv_threshold_bytes = threshold;
    rm::JobSpec job{nodes, 1, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [](Status) {});
  });
  const bool ok = tc.run_until([&] { return state.ranks_done == nodes; },
                               sim::seconds(1800));
  std::vector<double> out(payloads.size(), -1.0);
  if (!ok) return out;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    if (state.delivered[i] == nodes) {
      out[i] = sim::to_seconds(state.last_delivery[i] - state.issue[i]);
    }
  }
  return out;
}

/// Index of the last grid point where eager still wins (eager - rndv <= 0):
/// the crossover lives between it and the next point, matching the
/// definition PerfModel::collective_crossover() solves ("the payload above
/// which rendezvous never loses again"). Returns:
///   nullopt                    - some point unmeasured (no crossover call)
///   payloads.size()            - eager never wins (rendezvous from floor)
///   payloads.size() - 1        - eager still wins at the largest payload
inline std::optional<std::size_t> last_loss_index(
    const std::vector<double>& eager, const std::vector<double>& rndv) {
  std::size_t last = eager.size();  // sentinel: eager never wins
  for (std::size_t i = 0; i < eager.size(); ++i) {
    if (eager[i] < 0 || rndv[i] < 0) return std::nullopt;
    if (eager[i] - rndv[i] <= 0.0) last = i;
  }
  return last;
}

/// Linear interpolation of the payload where (eager - rndv) crosses zero
/// between grid points i and i+1. Exact when both points sit in the same
/// chunk segment (both latency curves are affine in the payload there).
inline double interpolate_crossover(const std::vector<std::size_t>& payloads,
                                    const std::vector<double>& eager,
                                    const std::vector<double>& rndv,
                                    std::size_t i) {
  const double f0 = eager[i] - rndv[i];          // <= 0: eager still ahead
  const double f1 = eager[i + 1] - rndv[i + 1];  // > 0: rendezvous ahead
  const double p0 = static_cast<double>(payloads[i]);
  const double p1 = static_cast<double>(payloads[i + 1]);
  if (f1 - f0 <= 0) return p1;
  return p0 + (0.0 - f0) * (p1 - p0) / (f1 - f0);
}

/// Chunk-segment endpoints covering (lo, hi]: both latency curves are
/// affine within one segment ((m-1)*C+1 .. m*C), so probing each segment's
/// first and last byte makes the crossover interpolation kink-free. Capped
/// by striding whole segments when the bracket spans many.
inline std::vector<std::size_t> refinement_payloads(std::size_t lo,
                                                    std::size_t hi,
                                                    std::uint32_t chunk) {
  std::vector<std::size_t> pts;
  const std::size_t m_lo = lo / chunk;
  const std::size_t m_hi = (hi - 1) / chunk;
  const std::size_t stride = std::max<std::size_t>(1, (m_hi - m_lo + 1) / 12);
  for (std::size_t m = m_lo; m <= m_hi; m += stride) {
    const std::size_t begin = std::max(lo, m * chunk + 1);
    const std::size_t end = std::min(hi, (m + 1) * chunk);
    if (begin > end) continue;
    pts.push_back(begin);
    if (end != begin) pts.push_back(end);
  }
  if (pts.empty() || pts.back() != hi) pts.push_back(hi);
  return pts;
}

inline IcclAblationReport run_iccl_ablation(const IcclAblationOptions& opts) {
  IcclAblationReport report;
  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  const core::PerfModel model(
      costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
  report.nodes = opts.nodes;
  report.chunk_bytes = costs.iccl_rndv_chunk_bytes;
  report.payloads = opts.payloads;
  report.protocols = {std::string(core::to_string(
                          core::CollectiveProtocol::Eager)),
                      std::string(core::to_string(
                          core::CollectiveProtocol::Rendezvous))};
  report.rendezvous_wins_at_max_everywhere = true;

  for (const auto& topo : opts.topologies) {
    report.topologies.push_back(topo.to_string());
    // Pin the protocol through the session option: a threshold of 1 routes
    // every non-empty broadcast through rendezvous, UINT32_MAX none.
    const std::vector<double> eager = measure_bcast_sweep(
        topo, opts.nodes, std::numeric_limits<std::uint32_t>::max(),
        opts.payloads);
    const std::vector<double> rndv =
        measure_bcast_sweep(topo, opts.nodes, 1, opts.payloads);

    for (int proto_idx = 0; proto_idx < 2; ++proto_idx) {
      const auto proto = proto_idx == 0 ? core::CollectiveProtocol::Eager
                                        : core::CollectiveProtocol::Rendezvous;
      const auto& measured = proto_idx == 0 ? eager : rndv;
      for (std::size_t i = 0; i < opts.payloads.size(); ++i) {
        IcclAblationPoint pt;
        pt.topology = topo.to_string();
        pt.protocol = std::string(core::to_string(proto));
        pt.payload_bytes = opts.payloads[i];
        pt.measured_s = measured[i];
        pt.measured_ok = measured[i] >= 0.0;
        pt.model_s =
            model.collective_bcast(proto, topo, opts.nodes, opts.payloads[i]);
        if (pt.measured_ok && pt.measured_s > 0.0) {
          pt.residual_pct =
              (pt.model_s - pt.measured_s) / pt.measured_s * 100.0;
          report.max_abs_residual_pct = std::max(report.max_abs_residual_pct,
                                                 std::abs(pt.residual_pct));
        } else {
          report.measurement_failures += 1;
        }
        report.points.push_back(std::move(pt));
      }
    }

    IcclCrossoverPoint cx;
    cx.topology = topo.to_string();
    cx.measured_bytes = -1.0;
    const auto loss = last_loss_index(eager, rndv);
    if (loss && *loss == opts.payloads.size()) {
      // Rendezvous cheaper from the grid floor on.
      cx.measured_bytes = static_cast<double>(opts.payloads.front());
    } else if (loss && *loss + 1 < opts.payloads.size()) {
      cx.measured_bytes =
          interpolate_crossover(opts.payloads, eager, rndv, *loss);
      // Refine around the coarse bracket: re-measure at chunk-segment
      // endpoints (the model solver's probe geometry) so the final
      // interpolation never spans a chunk-count kink, and extend one
      // coarse interval past the bracket - the rendezvous curve dips at
      // every added chunk, so the *last* eager win can sit just past a
      // boundary the coarse grid stepped over.
      const std::size_t hi_idx =
          std::min(*loss + 2, opts.payloads.size() - 1);
      const auto refined = refinement_payloads(opts.payloads[*loss],
                                               opts.payloads[hi_idx],
                                               report.chunk_bytes);
      if (refined.size() >= 2) {
        const auto e2 = measure_bcast_sweep(
            topo, opts.nodes, std::numeric_limits<std::uint32_t>::max(),
            refined);
        const auto r2 = measure_bcast_sweep(topo, opts.nodes, 1, refined);
        const auto rloss = last_loss_index(e2, r2);
        if (rloss && *rloss + 1 < refined.size()) {
          cx.measured_bytes = interpolate_crossover(refined, e2, r2, *rloss);
        }
      }
    }
    cx.model_bytes = static_cast<double>(
        model
            .collective_crossover(topo, opts.nodes,
                                  opts.payloads.back())
            .value_or(0));
    if (cx.model_bytes == 0) cx.model_bytes = -1.0;
    const std::size_t last = opts.payloads.size() - 1;
    cx.rendezvous_wins_at_max = eager[last] >= 0 && rndv[last] >= 0 &&
                                rndv[last] < eager[last];
    if (!cx.rendezvous_wins_at_max) {
      report.rendezvous_wins_at_max_everywhere = false;
    }
    if (cx.measured_bytes > 0 && cx.model_bytes > 0) {
      // Both solvers floor at the smallest modeled payload; clamping keeps
      // "crossover below the grid" from reading as disagreement.
      const double floor_b = static_cast<double>(opts.payloads.front());
      const double measured_c = std::max(cx.measured_bytes, floor_b);
      const double model_c = std::max(cx.model_bytes, floor_b);
      cx.agreement_pct = (model_c - measured_c) / measured_c * 100.0;
      report.max_abs_crossover_pct = std::max(report.max_abs_crossover_pct,
                                              std::abs(cx.agreement_pct));
    } else {
      // One side found a crossover, the other did not: worst disagreement.
      if ((cx.measured_bytes > 0) != (cx.model_bytes > 0)) {
        report.max_abs_crossover_pct = 100.0;
      }
    }
    report.crossovers.push_back(std::move(cx));

    // Model-only scatter sweep on the same grid: no session runs here - the
    // live fabric routes scatter parts through eager frames at every
    // threshold, so the rendezvous column is the hypothetical protocol's
    // closed form and the crossover answers "would one ever pay off".
    for (const std::size_t payload : opts.payloads) {
      ScatterModelPoint sp;
      sp.topology = topo.to_string();
      sp.payload_bytes = payload;
      sp.eager_s = model.collective_scatter(core::CollectiveProtocol::Eager,
                                            topo, opts.nodes, payload);
      sp.rndv_s = model.collective_scatter(
          core::CollectiveProtocol::Rendezvous, topo, opts.nodes, payload);
      report.scatter_model.push_back(std::move(sp));
    }
    ScatterCrossoverPoint sx;
    sx.topology = topo.to_string();
    sx.model_bytes = static_cast<double>(
        model.collective_scatter_crossover(topo, opts.nodes,
                                           opts.payloads.back())
            .value_or(0));
    if (sx.model_bytes == 0) sx.model_bytes = -1.0;
    sx.rndv_wins_at_max =
        model.collective_scatter(core::CollectiveProtocol::Rendezvous, topo,
                                 opts.nodes, opts.payloads.back()) <
        model.collective_scatter(core::CollectiveProtocol::Eager, topo,
                                 opts.nodes, opts.payloads.back());
    if (sx.model_bytes > 0 || sx.rndv_wins_at_max) {
      report.rendezvous_scatter_ever_wins = true;
    }
    report.scatter_crossovers.push_back(std::move(sx));
  }
  return report;
}

// --- JSON emission (deterministic key order; the emitter is the schema) ------

inline std::string to_json(const IcclAblationReport& r) {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"ablation_iccl\",\n";
  out += "  \"deterministic\": true,\n";
  out += "  \"nodes\": " + std::to_string(r.nodes) + ",\n";
  out += "  \"chunk_bytes\": " + std::to_string(r.chunk_bytes) + ",\n";
  out += "  \"payloads\": [";
  for (std::size_t i = 0; i < r.payloads.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(r.payloads[i]);
  }
  out += "],\n";
  out += "  \"topologies\": [";
  for (std::size_t i = 0; i < r.topologies.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + r.topologies[i] + "\"";
  }
  out += "],\n";
  out += "  \"protocols\": [";
  for (std::size_t i = 0; i < r.protocols.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + r.protocols[i] + "\"";
  }
  out += "],\n";
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const IcclAblationPoint& p = r.points[i];
    out += "    {\"topology\": \"" + p.topology + "\", \"protocol\": \"" +
           p.protocol +
           "\", \"payload_bytes\": " + std::to_string(p.payload_bytes) +
           ", \"measured_ok\": " + (p.measured_ok ? "true" : "false") +
           ", \"measured_s\": " + jsonv::num(p.measured_s) +
           ", \"model_s\": " + jsonv::num(p.model_s) +
           ", \"residual_pct\": " + jsonv::num(p.residual_pct) + "}";
    if (i + 1 != r.points.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"crossovers\": [\n";
  for (std::size_t i = 0; i < r.crossovers.size(); ++i) {
    const IcclCrossoverPoint& c = r.crossovers[i];
    out += "    {\"topology\": \"" + c.topology +
           "\", \"measured_bytes\": " + jsonv::num(c.measured_bytes) +
           ", \"model_bytes\": " + jsonv::num(c.model_bytes) +
           ", \"agreement_pct\": " + jsonv::num(c.agreement_pct) +
           ", \"rendezvous_wins_at_max\": " +
           (c.rendezvous_wins_at_max ? "true" : "false") + "}";
    if (i + 1 != r.crossovers.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"scatter_model\": [\n";
  for (std::size_t i = 0; i < r.scatter_model.size(); ++i) {
    const ScatterModelPoint& p = r.scatter_model[i];
    out += "    {\"topology\": \"" + p.topology +
           "\", \"payload_bytes\": " + std::to_string(p.payload_bytes) +
           ", \"eager_s\": " + jsonv::num(p.eager_s) +
           ", \"rndv_s\": " + jsonv::num(p.rndv_s) + "}";
    if (i + 1 != r.scatter_model.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"scatter_crossovers\": [\n";
  for (std::size_t i = 0; i < r.scatter_crossovers.size(); ++i) {
    const ScatterCrossoverPoint& c = r.scatter_crossovers[i];
    out += "    {\"topology\": \"" + c.topology +
           "\", \"model_bytes\": " + jsonv::num(c.model_bytes) +
           ", \"rndv_wins_at_max\": " +
           (c.rndv_wins_at_max ? "true" : "false") + "}";
    if (i + 1 != r.scatter_crossovers.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"rendezvous_scatter_ever_wins\": " +
         std::string(r.rendezvous_scatter_ever_wins ? "true" : "false") +
         ",\n";
  out += "  \"max_abs_residual_pct\": " +
         jsonv::num(r.max_abs_residual_pct) + ",\n";
  out += "  \"max_abs_crossover_pct\": " +
         jsonv::num(r.max_abs_crossover_pct) + ",\n";
  out += "  \"rendezvous_wins_at_max_everywhere\": " +
         std::string(r.rendezvous_wins_at_max_everywhere ? "true" : "false") +
         ",\n";
  out += "  \"measurement_failures\": " +
         std::to_string(r.measurement_failures) + "\n";
  out += "}\n";
  return out;
}

}  // namespace lmon::bench
