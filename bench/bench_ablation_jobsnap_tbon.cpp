// bench_ablation_jobsnap_tbon - evaluates the paper's §5.1 future-work
// idea: replacing Jobsnap's flat ICCL gather (all snapshot bytes converge
// on one master daemon) with a TBON whose filters merge snapshot batches at
// every interior hop.
//
// Metric: the *collection* phase (attachAndSpawn return -> report at FE),
// isolating the part the TBON is meant to improve.
#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "tools/jobsnap/jobsnap_be.hpp"
#include "tools/jobsnap/jobsnap_fe.hpp"
#include "tools/jobsnap/jobsnap_tbon.hpp"

namespace lmon {
namespace {

using tools::jobsnap::JobsnapBe;
using tools::jobsnap::JobsnapFe;
using tools::jobsnap::JobsnapOutcome;
using tools::jobsnap::JobsnapTbonBe;
using tools::jobsnap::JobsnapTbonFe;
using tools::jobsnap::JobsnapTbonOutcome;

double run_flat(int ndaemons, int tpn) {
  bench::TestCluster tc(ndaemons);
  bench::ScopedTrace trace(tc);
  JobsnapBe::install(tc.machine);
  const cluster::Pid launcher = bench::start_plain_job(tc, ndaemons, tpn);
  if (launcher == cluster::kInvalidPid) return -1;
  JobsnapOutcome out;
  cluster::SpawnOptions opts;
  opts.executable = "jobsnap_fe";
  auto res = tc.machine.front_end().spawn(
      std::make_unique<JobsnapFe>(launcher, &out), std::move(opts));
  if (!res.is_ok()) return -1;
  if (!tc.run_until([&] { return out.done; }, sim::seconds(900)) ||
      !out.status.is_ok()) {
    return -1;
  }
  return sim::to_seconds(out.t_done - out.t_spawned);
}

double run_tbon(int ndaemons, int tpn) {
  bench::TestCluster tc(ndaemons);
  bench::ScopedTrace trace(tc);
  JobsnapTbonBe::install(tc.machine);
  const cluster::Pid launcher = bench::start_plain_job(tc, ndaemons, tpn);
  if (launcher == cluster::kInvalidPid) return -1;
  JobsnapTbonOutcome out;
  cluster::SpawnOptions opts;
  opts.executable = "jobsnap_tfe";
  auto res = tc.machine.front_end().spawn(
      std::make_unique<JobsnapTbonFe>(launcher, &out), std::move(opts));
  if (!res.is_ok()) return -1;
  if (!tc.run_until([&] { return out.done; }, sim::seconds(900)) ||
      !out.status.is_ok()) {
    return -1;
  }
  return sim::to_seconds(out.t_collected - out.t_snap_sent);
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (!bench::common_flag(arg)) {
      std::fprintf(stderr, "usage: %s [--trace-out=PATH]\n", argv[0]);
      return 2;
    }
  }
  bench::set_trace_out(args);
  bench::print_title(
      "Extension (paper §5.1 future work): Jobsnap collection phase,\n"
      "flat ICCL gather vs TBON with per-hop snapshot merging");
  std::printf("%8s %6s | %12s %12s | %7s\n", "daemons", "tasks",
              "flat gather", "TBON merge", "ratio");
  const int tpn = 8;
  for (int n : bench::scales({16, 64, 256, 512, 1024}, {16})) {
    const double flat = run_flat(n, tpn);
    const double tbon = run_tbon(n, tpn);
    if (flat < 0 || tbon < 0) {
      std::printf("%8d %6d | FAIL\n", n, n * tpn);
      continue;
    }
    std::printf("%8d %6d | %11.4fs %11.4fs | %6.2fx\n", n, n * tpn, flat,
                tbon, flat / tbon);
  }
  std::printf(
      "\nshape: the TBON merge overtakes the flat gather as daemon count "
      "grows (crossover ~512 here),\nbecause the flat path funnels every "
      "snapshot byte through one master while the TBON merges\nrank-sorted "
      "batches per hop. The margin is modest at these report sizes - "
      "consistent with the\npaper presenting this as future work rather "
      "than a necessity.\n");
  return 0;
}
