// ablation_rsh_lib.hpp - the launch-strategy ablation sweep (paper Figure 4)
// shared by bench_ablation_rsh and the bench-schema golden test.
//
// Every strategy is driven through the same surface - the FE API's
// launchAndSpawn with a comm::LaunchStrategy session option - so new
// strategies added to comm::kAllLaunchStrategies automatically join the
// ablation. Each measured point is paired with the per-strategy analytic
// model (core::PerfModel) and the residual between them; the sweep runs the
// cost model jitter-free so residuals compare expectation against
// expectation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/fe_api.hpp"
#include "core/perf_model.hpp"
#include "simkernel/stats.hpp"

namespace lmon::bench {

struct RshAblationOptions {
  /// Largest node count swept; the scale list is every canonical scale
  /// <= max_nodes (small scales are kept only when the cap is small, so the
  /// golden-schema test can run the identical code path at toy size).
  int max_nodes = 1024;
  int tasks_per_node = 1;
};

struct RshAblationPoint {
  std::string strategy;
  std::string topology;  ///< fabric spec (resolved arity)
  int nodes = 0;
  bool measured_ok = false;
  bool model_predicts_failure = false;
  double measured_s = -1.0;
  double model_s = -1.0;
  double residual_pct = 0.0;  ///< (model - measured) / measured * 100
};

struct RshAblationReport {
  int tasks_per_node = 1;
  std::vector<int> scales;
  std::vector<std::string> strategies;
  std::vector<RshAblationPoint> points;
  /// Model-solved crossovers (node counts; -1 = none in range).
  int tree_over_serial = -1;
  int rm_over_serial = -1;
  int rm_over_tree = -1;
  double max_abs_residual_pct = 0.0;
  /// Points where the model and the measurement disagree about *whether
  /// the launch completes at all* (e.g. serial-rsh succeeding past the
  /// fork limit, or tree-rsh failing where the model predicts success).
  /// These carry no residual, so they gate separately.
  int model_measured_disagreements = 0;
};

/// The fabric each strategy is swept over: tree-rsh at its natural modest
/// agent degree, everything else at the platform default (kary:0 resolves
/// to the RM's fan-out).
inline comm::TopologySpec ablation_topology(comm::LaunchStrategyKind kind) {
  if (kind == comm::LaunchStrategyKind::TreeRsh) {
    return comm::TopologySpec{comm::TopologyKind::KAry, 8};
  }
  return comm::TopologySpec{comm::TopologyKind::KAry, 0};
}

/// Full launchAndSpawn (timeline e0..e11) under `kind`; < 0 on failure.
inline double measure_launch_and_spawn(comm::LaunchStrategyKind kind,
                                       const comm::TopologySpec& topo,
                                       int nodes, int tpn) {
  // Jitter-free costs: the sweep compares the analytic expectation against
  // the simulated expectation, not against one noisy sample.
  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  TestCluster tc(nodes, 0, costs);
  ScopedTrace trace(tc);
  sim::Timeline timeline;
  tc.machine.set_timeline(&timeline);

  bool done = false;
  Status status;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    cfg.launch_strategy = kind;
    cfg.topology = topo;
    rm::JobSpec job{nodes, tpn, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      status = st;
      done = true;
    });
  });
  tc.run_until([&] { return done; }, sim::seconds(3600));
  if (!done || !status.is_ok()) return -1.0;
  return sim::to_seconds(timeline.between("e0_fe_call", "e11_return"));
}

inline RshAblationReport run_rsh_ablation(const RshAblationOptions& opts) {
  RshAblationReport report;
  report.tasks_per_node = opts.tasks_per_node;

  // Canonical scales; the paper's Figure 4 story needs >= 512 where the
  // serial baseline collapses. Tiny scales exist for smoke/golden runs.
  for (int n : {4, 8, 16, 64, 128, 256, 512, 1024}) {
    if (n > opts.max_nodes) continue;
    if (opts.max_nodes >= 64 && n < 64) continue;
    report.scales.push_back(n);
  }

  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  const core::PerfModel model(
      costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));

  for (comm::LaunchStrategyKind kind : comm::kAllLaunchStrategies) {
    report.strategies.emplace_back(comm::to_string(kind));
    const comm::TopologySpec topo = ablation_topology(kind);
    for (int n : report.scales) {
      RshAblationPoint pt;
      pt.strategy = std::string(comm::to_string(kind));
      pt.topology = topo.to_string();
      pt.nodes = n;
      pt.model_predicts_failure = model.predicts_failure(kind, n);
      if (!pt.model_predicts_failure) {
        pt.model_s = model.predict(kind, topo, n, opts.tasks_per_node).total();
      }
      pt.measured_s =
          measure_launch_and_spawn(kind, topo, n, opts.tasks_per_node);
      pt.measured_ok = pt.measured_s >= 0.0;
      if (pt.measured_ok && !pt.model_predicts_failure) {
        pt.residual_pct = (pt.model_s - pt.measured_s) / pt.measured_s * 100.0;
        report.max_abs_residual_pct = std::max(report.max_abs_residual_pct,
                                               std::abs(pt.residual_pct));
      } else if (pt.measured_ok == pt.model_predicts_failure) {
        report.model_measured_disagreements += 1;
      }
      report.points.push_back(std::move(pt));
    }
  }

  const comm::TopologySpec tree_topo =
      ablation_topology(comm::LaunchStrategyKind::TreeRsh);
  const comm::TopologySpec default_topo =
      ablation_topology(comm::LaunchStrategyKind::SerialRsh);
  constexpr int kMaxCross = 4096;
  report.tree_over_serial =
      model
          .crossover(comm::LaunchStrategyKind::TreeRsh,
                     comm::LaunchStrategyKind::SerialRsh, tree_topo,
                     opts.tasks_per_node, kMaxCross)
          .value_or(-1);
  report.rm_over_serial =
      model
          .crossover(comm::LaunchStrategyKind::RmBulk,
                     comm::LaunchStrategyKind::SerialRsh, default_topo,
                     opts.tasks_per_node, kMaxCross)
          .value_or(-1);
  report.rm_over_tree =
      model
          .crossover(comm::LaunchStrategyKind::RmBulk,
                     comm::LaunchStrategyKind::TreeRsh, tree_topo,
                     opts.tasks_per_node, kMaxCross)
          .value_or(-1);
  return report;
}

// --- JSON emission ------------------------------------------------------------
//
// Hand-rolled, deterministic key order: BENCH_*.json trajectory tooling
// diffs the shape of this output, so the emitter is the schema.

namespace jsonv {

inline std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace jsonv

inline std::string to_json(const RshAblationReport& r) {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"ablation_rsh\",\n";
  out += "  \"deterministic\": true,\n";
  out += "  \"tasks_per_node\": " + std::to_string(r.tasks_per_node) + ",\n";
  out += "  \"scales\": [";
  for (std::size_t i = 0; i < r.scales.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(r.scales[i]);
  }
  out += "],\n";
  out += "  \"strategies\": [";
  for (std::size_t i = 0; i < r.strategies.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + r.strategies[i] + "\"";
  }
  out += "],\n";
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const RshAblationPoint& p = r.points[i];
    out += "    {\"strategy\": \"" + p.strategy + "\", \"topology\": \"" +
           p.topology + "\", \"nodes\": " + std::to_string(p.nodes) +
           ", \"measured_ok\": " + (p.measured_ok ? "true" : "false") +
           ", \"model_predicts_failure\": " +
           (p.model_predicts_failure ? "true" : "false") +
           ", \"measured_s\": " + jsonv::num(p.measured_s) +
           ", \"model_s\": " + jsonv::num(p.model_s) +
           ", \"residual_pct\": " + jsonv::num(p.residual_pct) + "}";
    if (i + 1 != r.points.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"crossovers\": {\"tree_over_serial\": " +
         std::to_string(r.tree_over_serial) +
         ", \"rm_over_serial\": " + std::to_string(r.rm_over_serial) +
         ", \"rm_over_tree\": " + std::to_string(r.rm_over_tree) + "},\n";
  out += "  \"max_abs_residual_pct\": " +
         jsonv::num(r.max_abs_residual_pct) + ",\n";
  out += "  \"model_measured_disagreements\": " +
         std::to_string(r.model_measured_disagreements) + "\n";
  out += "}\n";
  return out;
}

// --- JSON shape skeleton ------------------------------------------------------
//
// Reduces a JSON document to its structure: object keys stay, every scalar
// collapses to a type tag, and an array collapses to the set of distinct
// element shapes. The golden-schema test string-compares this skeleton, so
// renaming/dropping a key (or emitting a ragged row) fails ctest while
// mere value drift does not.

namespace jsonv {

struct ShapeParser {
  std::string_view s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  void skip_string() {
    ++i;  // opening quote
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    ++i;  // closing quote
  }
  std::string string_token() {
    const std::size_t begin = i + 1;
    skip_string();
    return std::string(s.substr(begin, i - 1 - begin));
  }
  std::string value() {
    ws();
    if (i >= s.size()) return "?";
    const char c = s[i];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      skip_string();
      return "str";
    }
    if (c == 't' || c == 'f') {
      i += c == 't' ? 4 : 5;
      return "bool";
    }
    if (c == 'n') {
      i += 4;
      return "null";
    }
    while (i < s.size() &&
           (s[i] == '-' || s[i] == '+' || s[i] == '.' || s[i] == 'e' ||
            s[i] == 'E' || (s[i] >= '0' && s[i] <= '9'))) {
      ++i;
    }
    return "num";
  }
  std::string object() {
    ++i;  // '{'
    std::string out = "{";
    bool first = true;
    while (true) {
      ws();
      if (i >= s.size() || s[i] == '}') break;
      if (!first) {
        if (s[i] == ',') ++i;
        ws();
        if (i >= s.size() || s[i] == '}') break;
      }
      const std::string key = string_token();
      ws();
      if (i < s.size() && s[i] == ':') ++i;
      if (!first) out += ",";
      out += key + ":" + value();
      first = false;
    }
    if (i < s.size()) ++i;  // '}'
    return out + "}";
  }
  std::string array() {
    ++i;  // '['
    std::vector<std::string> shapes;
    while (true) {
      ws();
      if (i >= s.size() || s[i] == ']') break;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      std::string shape = value();
      if (std::find(shapes.begin(), shapes.end(), shape) == shapes.end()) {
        shapes.push_back(std::move(shape));
      }
    }
    if (i < s.size()) ++i;  // ']'
    std::string out = "[";
    for (std::size_t k = 0; k < shapes.size(); ++k) {
      if (k != 0) out += "|";
      out += shapes[k];
    }
    return out + "]";
  }
};

}  // namespace jsonv

/// Canonical structural skeleton of `json` (see above).
inline std::string json_shape(std::string_view json) {
  jsonv::ShapeParser p{json};
  return p.value();
}

}  // namespace lmon::bench
