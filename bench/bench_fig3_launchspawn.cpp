// bench_fig3_launchspawn - reproduces paper Figure 3:
// "Modeled vs Measured Performance" of launchAndSpawn, 16..128 tool daemons
// (8 MPI tasks per daemon), with the per-region cost breakdown:
//   Region A: T(job), T(daemon)+T(setup), T(collective), tracing cost
//   Region B: RPDTAB fetching   Region C: handshaking   + other LaunchMON.
//
// Paper anchors: total < 1 s at 128 nodes (1024 tasks); LaunchMON's own
// share ~5.2%; tracing cost 18 ms and "other" 12 ms at any scale.
// A second table validates *every* launch strategy against its own model
// (core::PerfModel's per-strategy family), not just the rm-bulk default.
#include <cstdio>
#include <memory>

#include "bench/ablation_rsh_lib.hpp"
#include "bench/bench_util.hpp"
#include "core/fe_api.hpp"
#include "core/perf_model.hpp"
#include "simkernel/stats.hpp"

namespace lmon {
namespace {

struct Measurement {
  double total = 0;
  double t_job = 0;
  double t_daemon = 0;
  double t_setup = 0;
  double t_collective = 0;
  double tracing = 0;
  double rpdtab = 0;
  double handshake = 0;
  double other = 0;
  bool ok = false;
};

Measurement run_once(int ndaemons, int tpn) {
  bench::TestCluster tc(ndaemons);
  bench::ScopedTrace trace(tc);
  sim::Timeline timeline;
  sim::CostLedger ledger;
  tc.machine.set_timeline(&timeline);
  tc.machine.set_ledger(&ledger);

  Measurement m;
  bool done = false;
  Status status;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{ndaemons, tpn, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      status = st;
      done = true;
    });
  });
  tc.run_until([&] { return done; }, sim::seconds(600));
  if (!done || !status.is_ok()) return m;

  m.ok = true;
  m.total = sim::to_seconds(timeline.between("e0_fe_call", "e11_return"));
  m.t_job = sim::to_seconds(timeline.between("t_job_begin", "t_job_end"));
  m.t_daemon =
      sim::to_seconds(timeline.between("t_daemon_begin", "t_daemon_end"));
  m.t_setup = sim::to_seconds(
      timeline.between("be_e8_setup_begin", "be_e9_setup_done"));
  m.t_collective = sim::to_seconds(
      timeline.between("be_t_collective_begin", "be_t_collective_end"));
  m.tracing = sim::to_seconds(ledger.total("tracing"));
  m.rpdtab = sim::to_seconds(ledger.total("rpdtab_fetch"));
  m.handshake = sim::to_seconds(
      timeline.between("be_e10_ready", "e11_return") +
      timeline.between("e7_handshake_begin", "be_t_collective_begin") -
      timeline.between("be_e8_setup_begin", "be_e9_setup_done"));
  if (m.handshake < 0) m.handshake = 0;
  m.other = sim::to_seconds(ledger.total("other"));
  return m;
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (!bench::common_flag(arg)) {
      std::fprintf(stderr, "usage: %s [--trace-out=PATH]\n", argv[0]);
      return 2;
    }
  }
  bench::set_trace_out(args);
  bench::print_title(
      "Figure 3: launchAndSpawn modeled vs measured (8 MPI tasks/daemon)");
  std::printf(
      "%8s %6s | %9s %9s | %8s %8s %8s %8s %8s %8s %8s %8s | %7s\n",
      "daemons", "tasks", "measured", "model", "T(job)", "T(dmn)", "T(setup)",
      "T(coll)", "tracing", "rpdtab", "handshk", "other", "lmon%");

  const cluster::CostModel costs;
  const core::PerfModel model(costs,
                              static_cast<std::uint32_t>(costs.rm_launch_fanout));
  const int tpn = 8;
  for (int n : bench::scales({16, 32, 48, 64, 80, 96, 112, 128}, {16})) {
    const Measurement m = run_once(n, tpn);
    const auto p = model.predict(n, tpn);
    if (!m.ok) {
      std::printf("%8d %6d | launch failed\n", n, n * tpn);
      continue;
    }
    const double lmon_share =
        (m.tracing + m.rpdtab + m.handshake + m.other) / m.total * 100.0;
    std::printf(
        "%8d %6d | %8.3fs %8.3fs | %7.3fs %7.3fs %7.3fs %7.3fs %7.3fs "
        "%7.3fs %7.3fs %7.3fs | %6.1f%%\n",
        n, n * tpn, m.total, p.total(), m.t_job, m.t_daemon, m.t_setup,
        m.t_collective, m.tracing, m.rpdtab, m.handshake, m.other,
        lmon_share);
  }
  std::printf(
      "\npaper anchors: <1 s total at 128 daemons/1024 tasks; tracing 18 ms "
      "and other 12 ms scale-independent;\nLaunchMON share ~5%% of total.\n");

  // --- per-strategy model validation (jitter-free) ---------------------------
  bench::print_title(
      "launchAndSpawn per launch strategy: modeled vs measured");
  std::printf("%10s %9s %8s | %9s %9s %9s\n", "strategy", "fabric",
              "daemons", "measured", "model", "residual");
  const cluster::CostModel det = costs.deterministic();
  const core::PerfModel det_model(
      det, static_cast<std::uint32_t>(det.rm_launch_fanout));
  for (comm::LaunchStrategyKind kind : comm::kAllLaunchStrategies) {
    const comm::TopologySpec topo = bench::ablation_topology(kind);
    for (int n : bench::scales({16, 48, 96}, {8})) {
      const double measured =
          bench::measure_launch_and_spawn(kind, topo, n, tpn);
      const double predicted = det_model.predict(kind, topo, n, tpn).total();
      std::printf("%10s %9s %8d |", std::string(comm::to_string(kind)).c_str(),
                  topo.to_string().c_str(), n);
      if (measured < 0) {
        std::printf(" %8s", "FAIL");
      } else {
        std::printf(" %8.3fs", measured);
      }
      std::printf(" %8.3fs", predicted);
      if (measured > 0) {
        std::printf(" %8.1f%%\n", (predicted - measured) / measured * 100.0);
      } else {
        std::printf(" %9s\n", "-");
      }
    }
  }
  std::printf(
      "\nthe per-strategy family shares every calibration constant; only "
      "T(daemon) is strategy-specific.\n");
  return 0;
}
