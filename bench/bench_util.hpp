// bench_util.hpp - shared harness pieces for the figure/table benches.
//
// These benches drive the simulated cluster, so the numbers they print are
// simulated seconds (deterministic across runs and machines). They
// reproduce the *shape* of the paper's results: who wins, by what factor,
// and where the crossovers/failures fall.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/argparse.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/trace.hpp"
#include "tests/test_util.hpp"

namespace lmon::bench {

using testing::TestCluster;

inline void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// True when LMON_BENCH_SMOKE is set to a truthy value: the bench must
/// finish in seconds, not minutes. scripts/check.sh --bench-smoke (and the
/// bench-smoke ctest label) run every bench this way so tier-1 catches
/// bench bit-rot. An empty value or "0" means off, so exported-but-cleared
/// environments ("LMON_BENCH_SMOKE=0 ./bench") get the full sweep.
inline bool smoke_mode() {
  const char* v = std::getenv("LMON_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && std::string_view(v) != "0";
}

/// The sweep scale list for this run: the full list normally, the smoke
/// list (typically one or two tiny points) under LMON_BENCH_SMOKE.
inline std::vector<int> scales(std::vector<int> full, std::vector<int> smoke) {
  return smoke_mode() ? smoke : full;
}

// --- trace export (--trace-out= / LMON_TRACE_OUT) ---------------------------

/// Where this bench run writes its Chrome/Perfetto trace ("" = tracing
/// off). Sweeping benches re-trace every point into the same file, so the
/// exported trace is the *last* swept point's.
inline std::string& trace_out_path() {
  static std::string path;
  return path;
}

/// Resolves the trace destination from --trace-out=<path> (or the
/// LMON_TRACE_OUT environment variable when the flag is absent).
inline void set_trace_out(const std::vector<std::string>& args) {
  if (auto v = arg_value(args, "--trace-out="); v) {
    trace_out_path() = *v;
    return;
  }
  const char* env = std::getenv("LMON_TRACE_OUT");
  if (env != nullptr) trace_out_path() = env;
}

/// True for flags every bench accepts (used by strict argv validation).
inline bool common_flag(const std::string& arg) {
  return arg.rfind("--trace-out=", 0) == 0;
}

/// Attaches a Tracer (and optionally a Metrics registry) to a TestCluster's
/// machine for one measured run; the destructor detaches and writes the
/// Chrome trace. With an empty path and no metrics this is a no-op and the
/// run is bit-identical to an uninstrumented one.
class ScopedTrace {
 public:
  explicit ScopedTrace(TestCluster& tc, obs::Metrics* metrics = nullptr)
      : ScopedTrace(tc, trace_out_path(), metrics) {}

  ScopedTrace(TestCluster& tc, std::string path,
              obs::Metrics* metrics = nullptr)
      : machine_(tc.machine), path_(std::move(path)) {
    if (metrics != nullptr) machine_.set_metrics(metrics);
    if (path_.empty()) return;
    tracer_ = std::make_unique<obs::Tracer>(tc.simulator);
    bridge_ = std::make_unique<obs::LogBridge>(*tracer_);
    machine_.set_tracer(tracer_.get());
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  ~ScopedTrace() {
    machine_.set_metrics(nullptr);
    if (tracer_ == nullptr) return;
    machine_.set_tracer(nullptr);
    bridge_.reset();
    const Status st = obs::write_chrome_trace(*tracer_, path_);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export to %s failed: %s\n", path_.c_str(),
                   st.to_string().c_str());
    }
  }

  [[nodiscard]] obs::Tracer* tracer() { return tracer_.get(); }

 private:
  cluster::Machine& machine_;
  std::string path_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::LogBridge> bridge_;
};

/// Starts a plain (untraced) job and runs the simulation until the job's
/// tasks are up. Returns the launcher pid.
inline cluster::Pid start_plain_job(TestCluster& tc, int nnodes, int tpn) {
  auto res = rm::run_job(tc.machine, rm::JobSpec{nnodes, tpn, "mpi_app", {}});
  if (!res.is_ok()) {
    std::fprintf(stderr, "job start failed: %s\n",
                 res.status.to_string().c_str());
    return cluster::kInvalidPid;
  }
  tc.simulator.run(tc.simulator.now() + sim::seconds(10));
  return res.value;
}

}  // namespace lmon::bench
