// bench_util.hpp - shared harness pieces for the figure/table benches.
//
// These benches drive the simulated cluster, so the numbers they print are
// simulated seconds (deterministic across runs and machines). They
// reproduce the *shape* of the paper's results: who wins, by what factor,
// and where the crossovers/failures fall.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "tests/test_util.hpp"

namespace lmon::bench {

using testing::TestCluster;

inline void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// True when LMON_BENCH_SMOKE is set to a truthy value: the bench must
/// finish in seconds, not minutes. scripts/check.sh --bench-smoke (and the
/// bench-smoke ctest label) run every bench this way so tier-1 catches
/// bench bit-rot. An empty value or "0" means off, so exported-but-cleared
/// environments ("LMON_BENCH_SMOKE=0 ./bench") get the full sweep.
inline bool smoke_mode() {
  const char* v = std::getenv("LMON_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && std::string_view(v) != "0";
}

/// The sweep scale list for this run: the full list normally, the smoke
/// list (typically one or two tiny points) under LMON_BENCH_SMOKE.
inline std::vector<int> scales(std::vector<int> full, std::vector<int> smoke) {
  return smoke_mode() ? smoke : full;
}

/// Starts a plain (untraced) job and runs the simulation until the job's
/// tasks are up. Returns the launcher pid.
inline cluster::Pid start_plain_job(TestCluster& tc, int nnodes, int tpn) {
  auto res = rm::run_job(tc.machine, rm::JobSpec{nnodes, tpn, "mpi_app", {}});
  if (!res.is_ok()) {
    std::fprintf(stderr, "job start failed: %s\n",
                 res.status.to_string().c_str());
    return cluster::kInvalidPid;
  }
  tc.simulator.run(tc.simulator.now() + sim::seconds(10));
  return res.value;
}

}  // namespace lmon::bench
