// ablation_autotune_lib.hpp - the self-tuning-session ablation shared by
// bench_ablation_autotune and the bench-schema golden test.
//
// The question this sweep answers: does a session that leaves every knob
// unset (strategy, fabric topology, rendezvous threshold - the engine's
// auto-tuner picks all three from the platform's calibration profile) match
// the best configuration a careful human could have hand-picked from the
// full grid? Per (platform x scale x tasks-per-node) point it:
//
//   1. measures one real auto-tuned session (SpawnConfig all-default plus
//      the platform profile name) end to end (timeline e0..e11);
//   2. model-selects the best hand-picked config from the explicit grid
//      (strategy x topology x threshold, skipping predicted failures) and
//      measures that config for real through the same FE surface;
//   3. gates that auto matches or beats the hand-picked best within a small
//      tolerance, that the tuner's predicted total lands within 15% of the
//      measured session, and that the tuner never selected a strategy whose
//      model predicts failure.
//
// The machine is built *from the platform profile's own cost model*
// (jitter-free), so the tuner's model and the simulated reality agree by
// construction - exactly the regime a correctly calibrated deployment runs
// in. tasks-per-node is the payload axis: the handshake broadcasts the
// RPDTAB, whose size scales with n x tpn, which is what the threshold
// decision acts on.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/ablation_rsh_lib.hpp"  // jsonv helpers + json_shape
#include "bench/bench_util.hpp"
#include "cluster/cost_model_registry.hpp"
#include "core/auto_tune.hpp"
#include "core/fe_api.hpp"
#include "core/perf_model.hpp"
#include "simkernel/stats.hpp"

namespace lmon::bench {

struct AutotuneAblationOptions {
  std::vector<int> scales = {64, 256, 512};
  /// Registry profile names; the machine runs the profile's cost model.
  std::vector<std::string> platforms = {"atlas", "thunder", "zeus",
                                        "bluegene"};
  /// Payload axis: the handshake RPDTAB scales with nodes x tpn.
  std::vector<int> tasks_per_node = {1, 16};
  /// Auto must land within this of the measured hand-picked best.
  double tolerance_pct = 5.0;

  static AutotuneAblationOptions smoke() {
    AutotuneAblationOptions o;
    o.scales = {8, 16};
    o.platforms = {"atlas", "bluegene"};
    o.tasks_per_node = {1, 8};
    return o;
  }
};

/// One hand-picked candidate: every knob explicit.
struct HandPick {
  comm::LaunchStrategyKind strategy = comm::LaunchStrategyKind::RmBulk;
  comm::TopologySpec topology{comm::TopologyKind::KAry, 0};
  core::RndvSetting rndv;
};

struct AutotunePoint {
  std::string platform;
  int nodes = 0;
  int tasks_per_node = 0;
  // The auto-tuned session and what the tuner chose.
  bool auto_ok = false;
  double auto_s = -1.0;
  std::string auto_strategy;
  std::string auto_topology;
  std::uint32_t auto_rndv_threshold = 0;
  double predicted_s = -1.0;
  double residual_pct = 0.0;  ///< (predicted - auto_s) / auto_s * 100
  bool predicted_failure_selected = false;
  // The measured best hand-picked config (model-selected from the grid).
  bool best_ok = false;
  double best_s = -1.0;
  std::string best_strategy;
  std::string best_topology;
  std::string best_rndv;
  double auto_vs_best_pct = 0.0;  ///< (auto_s - best_s) / best_s * 100
};

struct AutotuneAblationReport {
  double tolerance_pct = 0.0;
  std::vector<int> scales;
  std::vector<std::string> platforms;
  std::vector<int> tasks_per_node;
  std::vector<AutotunePoint> points;
  double max_auto_vs_best_pct =
      -std::numeric_limits<double>::infinity();
  double max_abs_residual_pct = 0.0;
  int predicted_failure_selections = 0;
  int measurement_failures = 0;
  bool auto_matches_or_beats_everywhere = false;
};

/// The explicit grid a careful human would sweep by hand: every strategy,
/// the canonical fabric shapes (kary:0 resolves to the profile's RM
/// fan-out), and the three threshold pins.
inline std::vector<HandPick> hand_grid() {
  using K = comm::TopologyKind;
  using M = core::RndvSetting::Mode;
  std::vector<HandPick> grid;
  const std::vector<comm::TopologySpec> topologies = {
      {K::KAry, 0}, {K::KAry, 2}, {K::KAry, 8},
      {K::Binomial, 0}, {K::Flat, 0}};
  const std::vector<core::RndvSetting> rndvs = {
      {M::AlwaysEager, 0}, {M::AlwaysRndv, 0}, {M::PlatformDefault, 0}};
  for (const comm::LaunchStrategyKind s : comm::kAllLaunchStrategies) {
    for (const auto& t : topologies) {
      for (const auto& r : rndvs) {
        grid.push_back({s, t, r});
      }
    }
  }
  return grid;
}

/// Threshold a pinned RndvSetting resolves to under `costs` (mirrors the
/// engine-side resolution for the grid's three explicit modes).
inline std::uint32_t resolve_rndv(const core::RndvSetting& r,
                                  const cluster::CostModel& costs) {
  switch (r.mode) {
    case core::RndvSetting::Mode::AlwaysEager:
      return std::numeric_limits<std::uint32_t>::max();
    case core::RndvSetting::Mode::AlwaysRndv:
      return 1;
    case core::RndvSetting::Mode::Bytes:
      return r.bytes;
    default:
      return costs.iccl_rndv_threshold_bytes;
  }
}

/// Full launchAndSpawn (timeline e0..e11) on a machine running `costs`.
/// `pick` nullptr = auto-tuned session (all knobs unset); `tuned_out`
/// receives the engine's decision record when non-null. < 0 on failure.
inline double measure_autotune_session(const cluster::CostModel& costs,
                                       const std::string& platform, int nodes,
                                       int tpn, const HandPick* pick,
                                       core::TunedConfig* tuned_out) {
  TestCluster tc(nodes, 0, costs);
  ScopedTrace trace(tc);
  sim::Timeline timeline;
  tc.machine.set_timeline(&timeline);

  bool done = false;
  Status status;
  std::shared_ptr<core::FrontEnd> fe;
  int sid_out = -1;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    sid_out = sid.value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    cfg.platform_profile = platform;
    if (pick != nullptr) {
      cfg.launch_strategy = pick->strategy;
      cfg.topology = pick->topology;
      cfg.rndv = pick->rndv;
    }
    rm::JobSpec job{nodes, tpn, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      status = st;
      done = true;
    });
  });
  tc.run_until([&] { return done; }, sim::seconds(3600));
  if (!done || !status.is_ok()) return -1.0;
  if (tuned_out != nullptr) {
    if (const core::TunedConfig* t = fe->tuned_config(sid_out)) {
      *tuned_out = *t;
    }
  }
  return sim::to_seconds(timeline.between("e0_fe_call", "e11_return"));
}

inline AutotuneAblationReport run_autotune_ablation(
    const AutotuneAblationOptions& opts) {
  AutotuneAblationReport report;
  report.tolerance_pct = opts.tolerance_pct;
  report.scales = opts.scales;
  report.platforms = opts.platforms;
  report.tasks_per_node = opts.tasks_per_node;
  report.auto_matches_or_beats_everywhere = true;
  const std::vector<HandPick> grid = hand_grid();

  for (const std::string& platform : opts.platforms) {
    const auto profile =
        cluster::CostModelRegistry::builtin().find(platform);
    if (!profile) continue;
    // Jitter-free machine running the profile's own constants: model
    // decisions and simulated reality agree by construction.
    const cluster::CostModel costs = profile->deterministic();
    const core::PerfModel model(
        costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
    for (const int n : opts.scales) {
      for (const int tpn : opts.tasks_per_node) {
        AutotunePoint pt;
        pt.platform = platform;
        pt.nodes = n;
        pt.tasks_per_node = tpn;

        // The auto-tuned session (knobs unset; the engine decides).
        core::TunedConfig tuned;
        pt.auto_s = measure_autotune_session(costs, platform, n, tpn,
                                             nullptr, &tuned);
        pt.auto_ok = pt.auto_s >= 0.0;
        pt.auto_strategy = std::string(comm::to_string(tuned.strategy));
        pt.auto_topology = tuned.topology.to_string();
        pt.auto_rndv_threshold = tuned.rndv_threshold;
        pt.predicted_s = tuned.predicted_total_s;
        pt.predicted_failure_selected =
            model.predicts_failure(tuned.strategy, n);
        if (pt.predicted_failure_selected) {
          report.predicted_failure_selections += 1;
        }
        if (pt.auto_ok && pt.auto_s > 0.0) {
          pt.residual_pct =
              (pt.predicted_s - pt.auto_s) / pt.auto_s * 100.0;
          report.max_abs_residual_pct = std::max(
              report.max_abs_residual_pct, std::abs(pt.residual_pct));
        } else {
          report.measurement_failures += 1;
        }

        // Model-select the best hand-picked config, then measure it. The
        // grid is what a human would actually sweep; measuring only the
        // winner keeps the bench tractable while the model's per-point
        // fidelity is gated separately (residual_pct above and the
        // rsh/iccl ablations).
        const HandPick* best_pick = nullptr;
        double best_model = 0.0;
        for (const HandPick& hp : grid) {
          if (model.predicts_failure(hp.strategy, n)) continue;
          const double total =
              model
                  .predict(hp.strategy, hp.topology, n, tpn,
                           resolve_rndv(hp.rndv, costs))
                  .total();
          if (best_pick == nullptr || total < best_model) {
            best_pick = &hp;
            best_model = total;
          }
        }
        if (best_pick != nullptr) {
          pt.best_s = measure_autotune_session(costs, platform, n, tpn,
                                               best_pick, nullptr);
          pt.best_ok = pt.best_s >= 0.0;
          pt.best_strategy =
              std::string(comm::to_string(best_pick->strategy));
          pt.best_topology = best_pick->topology.to_string();
          pt.best_rndv = best_pick->rndv.to_string();
        }
        if (!pt.best_ok) report.measurement_failures += 1;
        if (pt.auto_ok && pt.best_ok && pt.best_s > 0.0) {
          pt.auto_vs_best_pct =
              (pt.auto_s - pt.best_s) / pt.best_s * 100.0;
          report.max_auto_vs_best_pct = std::max(
              report.max_auto_vs_best_pct, pt.auto_vs_best_pct);
          if (pt.auto_vs_best_pct > opts.tolerance_pct) {
            report.auto_matches_or_beats_everywhere = false;
          }
        } else {
          report.auto_matches_or_beats_everywhere = false;
        }
        report.points.push_back(std::move(pt));
      }
    }
  }
  if (report.points.empty()) {
    report.auto_matches_or_beats_everywhere = false;
    report.max_auto_vs_best_pct = 0.0;
  }
  if (report.max_auto_vs_best_pct ==
      -std::numeric_limits<double>::infinity()) {
    report.max_auto_vs_best_pct = 0.0;
  }
  return report;
}

// --- JSON emission (deterministic key order; the emitter is the schema) ------

inline std::string to_json(const AutotuneAblationReport& r) {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"ablation_autotune\",\n";
  out += "  \"deterministic\": true,\n";
  out += "  \"tolerance_pct\": " + jsonv::num(r.tolerance_pct) + ",\n";
  out += "  \"scales\": [";
  for (std::size_t i = 0; i < r.scales.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(r.scales[i]);
  }
  out += "],\n";
  out += "  \"platforms\": [";
  for (std::size_t i = 0; i < r.platforms.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + r.platforms[i] + "\"";
  }
  out += "],\n";
  out += "  \"tasks_per_node\": [";
  for (std::size_t i = 0; i < r.tasks_per_node.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(r.tasks_per_node[i]);
  }
  out += "],\n";
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const AutotunePoint& p = r.points[i];
    out += "    {\"platform\": \"" + p.platform +
           "\", \"nodes\": " + std::to_string(p.nodes) +
           ", \"tasks_per_node\": " + std::to_string(p.tasks_per_node) +
           ", \"auto_ok\": " + (p.auto_ok ? "true" : "false") +
           ", \"auto_s\": " + jsonv::num(p.auto_s) +
           ", \"auto_strategy\": \"" + p.auto_strategy +
           "\", \"auto_topology\": \"" + p.auto_topology +
           "\", \"auto_rndv_threshold\": " +
           std::to_string(p.auto_rndv_threshold) +
           ", \"predicted_s\": " + jsonv::num(p.predicted_s) +
           ", \"residual_pct\": " + jsonv::num(p.residual_pct) +
           ", \"predicted_failure_selected\": " +
           (p.predicted_failure_selected ? "true" : "false") +
           ", \"best_ok\": " + (p.best_ok ? "true" : "false") +
           ", \"best_s\": " + jsonv::num(p.best_s) +
           ", \"best_strategy\": \"" + p.best_strategy +
           "\", \"best_topology\": \"" + p.best_topology +
           "\", \"best_rndv\": \"" + p.best_rndv +
           "\", \"auto_vs_best_pct\": " + jsonv::num(p.auto_vs_best_pct) +
           "}";
    if (i + 1 != r.points.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"max_auto_vs_best_pct\": " +
         jsonv::num(r.max_auto_vs_best_pct) + ",\n";
  out += "  \"max_abs_residual_pct\": " +
         jsonv::num(r.max_abs_residual_pct) + ",\n";
  out += "  \"predicted_failure_selections\": " +
         std::to_string(r.predicted_failure_selections) + ",\n";
  out += "  \"measurement_failures\": " +
         std::to_string(r.measurement_failures) + ",\n";
  out += "  \"auto_matches_or_beats_everywhere\": " +
         std::string(r.auto_matches_or_beats_everywhere ? "true" : "false") +
         "\n";
  out += "}\n";
  return out;
}

}  // namespace lmon::bench
