// bench_ablation_piggyback - ablation of DESIGN.md decision #3: sending
// tool data piggybacked on the LaunchMON handshake vs as a separate
// UsrData round trip after Ready (paper §3.2: piggybacking "enables ...
// enhanced performance").
//
// Metric: time until every daemon holds the tool payload.
#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "core/be_api.hpp"
#include "core/fe_api.hpp"

namespace lmon {
namespace {

struct PayloadState {
  int holders = 0;  ///< daemons holding the tool payload
};

/// Daemon that counts payload arrival via either path. When the handshake
/// payload is empty it waits for a post-ready broadcast relayed from the
/// master's UsrData.
class PayloadDaemon : public cluster::Program {
 public:
  explicit PayloadDaemon(PayloadState* state) : state_(state) {}
  [[nodiscard]] std::string_view name() const override { return "pay_be"; }

  void on_start(cluster::Process& self) override {
    be_ = std::make_unique<core::BackEnd>(self);
    core::BackEnd::Callbacks cbs;
    cbs.on_init = [this](const core::Rpdtab&, const Bytes& usrdata,
                         std::function<void(Status)> done) {
      piggybacked_ = !usrdata.empty();
      if (piggybacked_) state_->holders += 1;
      done(Status::ok());
    };
    cbs.on_ready = [this](Status st) {
      if (!st.is_ok() || piggybacked_) return;
      if (!be_->is_master()) {
        be_->broadcast({}, [this](const Bytes&) { state_->holders += 1; });
      }
    };
    cbs.on_usrdata = [this](const Bytes& data) {
      be_->broadcast(data, [this](const Bytes&) { state_->holders += 1; });
    };
    (void)be_->init(std::move(cbs));
  }

  static void install(cluster::Machine& machine, PayloadState* state) {
    cluster::ProgramImage image;
    image.image_mb = 2.0;
    image.factory = [state](const std::vector<std::string>&) {
      return std::make_unique<PayloadDaemon>(state);
    };
    machine.install_program("pay_be", std::move(image));
  }

 private:
  PayloadState* state_;
  std::unique_ptr<core::BackEnd> be_;
  bool piggybacked_ = false;
};

double run_once(int ndaemons, std::size_t payload_bytes, bool piggyback) {
  bench::TestCluster tc(ndaemons);
  bench::ScopedTrace trace(tc);
  PayloadState state;
  PayloadDaemon::install(tc.machine, &state);

  bool session_done = false;
  sim::Time t0 = 0;
  sim::Time t_all = 0;
  std::shared_ptr<core::FrontEnd> fe;
  int sid = -1;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    sid = fe->create_session().value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "pay_be";
    cfg.fe_to_be_data = Bytes(payload_bytes, 0x5A);
    cfg.piggyback = piggyback;
    rm::JobSpec job{ndaemons, 8, "mpi_app", {}};
    t0 = self.sim().now();
    fe->launch_and_spawn(sid, job, cfg, [&](Status st) {
      session_done = st.is_ok();
      if (!piggyback && st.is_ok()) {
        // Non-piggyback path: the FE runtime sent UsrData after Ready;
        // the master relays it down the fabric.
      }
    });
  });
  const bool all = tc.run_until(
      [&] {
        if (state.holders == ndaemons && t_all == 0) {
          t_all = tc.simulator.now();
        }
        return state.holders == ndaemons;
      },
      sim::seconds(900));
  if (!all) return -1.0;
  return sim::to_seconds(t_all - t0);
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (!bench::common_flag(arg)) {
      std::fprintf(stderr, "usage: %s [--trace-out=PATH]\n", argv[0]);
      return 2;
    }
  }
  bench::set_trace_out(args);
  bench::print_title(
      "Ablation: tool-data piggybacking on the handshake vs separate round "
      "trip\n(time until all daemons hold the payload, seconds)");
  std::printf("%8s %10s | %12s %12s | %8s\n", "daemons", "payload",
              "piggyback", "separate", "saving");
  for (int n : bench::scales({16, 64, 256}, {16})) {
    for (std::size_t bytes : {1024u, 65536u, 1048576u}) {
      const double pig = run_once(n, bytes, true);
      const double sep = run_once(n, bytes, false);
      if (pig < 0 || sep < 0) {
        std::printf("%8d %9zuK | FAIL\n", n, bytes / 1024);
        continue;
      }
      std::printf("%8d %9zuK | %11.3fs %11.3fs | %6.1f%%\n", n, bytes / 1024,
                  pig, sep, (sep - pig) / sep * 100.0);
    }
  }
  std::printf(
      "\nshape: piggybacking rides the handshake broadcast, saving the "
      "extra FE->master->fabric round\ntrip; the saving grows with daemon "
      "count (deeper release chain), modestly with payload size.\n");
  return 0;
}
