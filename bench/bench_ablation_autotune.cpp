// bench_ablation_autotune - self-tuning sessions vs the hand-picked grid:
// per (platform x scale x tasks-per-node) point, one real auto-tuned
// session (every knob unset; the engine's PerfModel-driven tuner picks the
// launch strategy, fabric topology and rendezvous threshold from the
// platform's calibration profile) is measured against the best explicit
// configuration model-selected from the full strategy x topology x
// threshold grid and measured through the same FE surface.
//
// Gates: auto matches or beats the hand-picked best at every point (small
// tolerance), the tuner's predicted session total lands within 15% of the
// measured one, and the tuner never selects a strategy whose model
// predicts failure (e.g. any rsh flavor on a BlueGene-class machine).
//
// Flags:
//   --json        machine-readable report (schema under golden test; see
//                 tests/integration/bench_schema_test.cpp)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/ablation_autotune_lib.hpp"

namespace lmon {
namespace {

void print_table(const bench::AutotuneAblationReport& report) {
  bench::print_title(
      "Ablation: auto-tuned sessions vs best hand-picked configuration");
  std::printf("%9s %5s %4s | %9s %-22s | %9s %-22s | %8s %8s\n", "platform",
              "nodes", "tpn", "auto", "(chosen)", "best", "(hand-picked)",
              "vs best", "residual");
  for (const auto& p : report.points) {
    const std::string chosen = p.auto_strategy + "/" + p.auto_topology;
    const std::string hand = p.best_strategy + "/" + p.best_topology + "/" +
                             p.best_rndv;
    std::printf("%9s %5d %4d |", p.platform.c_str(), p.nodes,
                p.tasks_per_node);
    if (p.auto_ok) {
      std::printf(" %8.3fs %-22s", p.auto_s, chosen.c_str());
    } else {
      std::printf(" %8s %-22s", "FAIL", "-");
    }
    std::printf(" |");
    if (p.best_ok) {
      std::printf(" %8.3fs %-22s", p.best_s, hand.c_str());
    } else {
      std::printf(" %8s %-22s", "FAIL", "-");
    }
    std::printf(" | %+7.2f%% %+7.2f%%", p.auto_vs_best_pct, p.residual_pct);
    if (p.predicted_failure_selected) std::printf("  [PREDICTED-FAIL PICK!]");
    std::printf("\n");
  }
  std::printf(
      "\nworst auto-vs-best: %+.2f%% (gate: +%.1f%%); worst |predicted - "
      "measured|: %.2f%% (gate: 15%%)\npredicted-failure selections: %d "
      "(gate: 0); auto matches or beats best everywhere: %s\n",
      report.max_auto_vs_best_pct, report.tolerance_pct,
      report.max_abs_residual_pct, report.predicted_failure_selections,
      report.auto_matches_or_beats_everywhere ? "yes" : "NO");
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (arg != "--json" && !bench::common_flag(arg)) {
      std::fprintf(stderr, "usage: %s [--json] [--trace-out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  bench::set_trace_out(args);
  bench::AutotuneAblationOptions opts;
  if (bench::smoke_mode()) opts = bench::AutotuneAblationOptions::smoke();
  const bool json =
      std::find(args.begin(), args.end(), "--json") != args.end();

  const bench::AutotuneAblationReport report =
      bench::run_autotune_ablation(opts);
  if (json) {
    std::fputs(bench::to_json(report).c_str(), stdout);
  } else {
    print_table(report);
  }
  return (report.auto_matches_or_beats_everywhere &&
          report.max_abs_residual_pct <= 15.0 &&
          report.predicted_failure_selections == 0 &&
          report.measurement_failures == 0)
             ? 0
             : 1;
}
