// fig6_stat_lib.hpp - the STAT start-up comparison sweep (paper Figure 6)
// shared by bench_fig6_stat and the bench-schema golden test.
//
// Each scale runs STAT's launch+connect twice over a 1-deep TBON: once the
// MRNet-native way (serial rsh) and once riding LaunchMON. A Metrics
// registry attaches to every run and accumulates TBON/rsh/net counters
// across the sweep for the --json report.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bench/ablation_rsh_lib.hpp"  // jsonv::num / json_shape
#include "bench/bench_util.hpp"
#include "bench/gather_sweep_lib.hpp"
#include "tbon/comm_node.hpp"
#include "tools/stat/stat_be.hpp"
#include "tools/stat/stat_fe.hpp"

namespace lmon::bench {

struct StatBenchOptions {
  std::vector<int> scales{4, 16, 64, 128, 256, 512};
  int tasks_per_daemon = 8;
  /// Upstream-plane sweep riding along: STAT's sample is a fan-in of
  /// packed prefix trees, so this bench carries the gather protocol sweep
  /// over the narrow/wide/flat shapes STAT TBONs use (complementing fig5's
  /// kary:4/binomial/flat grid).
  GatherSweepOptions gather = [] {
    GatherSweepOptions o;
    o.topologies = {{comm::TopologyKind::KAry, 2},
                    {comm::TopologyKind::KAry, 8},
                    {comm::TopologyKind::Flat, 0}};
    return o;
  }();

  /// Toy scale for smoke runs and the golden-schema test.
  static StatBenchOptions smoke() {
    StatBenchOptions o;
    o.scales = {4, 16};
    o.gather = o.gather.smoke();
    return o;
  }
};

struct StatBenchPoint {
  int daemons = 0;
  std::string mode;  ///< "adhoc-rsh" | "launchmon"
  bool ok = false;
  bool done = false;
  std::string error;
  double launch_connect_s = 0;
  double handshake_s = 0;
};

struct StatBenchReport {
  int tasks_per_daemon = 1;
  std::vector<int> scales;
  std::vector<StatBenchPoint> points;
  /// Upstream gather protocol sweep (model-gated; see gather_sweep_lib.hpp).
  GatherSweepReport gather;
  /// Protocol counters accumulated over every swept point.
  obs::Metrics metrics;
};

/// One STAT launch+connect run at `ndaemons` under `mode`. Metrics (and the
/// --trace-out tracer, when enabled) attach for the duration of the run.
inline StatBenchPoint run_stat_point(int ndaemons, int tpn,
                                     tools::stat::StartupMode mode,
                                     obs::Metrics* metrics) {
  TestCluster tc(ndaemons);
  ScopedTrace trace(tc, metrics);
  tools::stat::StatBe::install(tc.machine);
  tbon::AdHocCommNode::install(tc.machine);
  tbon::LmonCommNode::install(tc.machine);

  StatBenchPoint pt;
  pt.daemons = ndaemons;
  pt.mode =
      mode == tools::stat::StartupMode::AdHocRsh ? "adhoc-rsh" : "launchmon";
  const cluster::Pid launcher = start_plain_job(tc, ndaemons, tpn);
  if (launcher == cluster::kInvalidPid) {
    pt.error = "job start failed";
    return pt;
  }

  tools::stat::StatConfig cfg;
  cfg.mode = mode;
  cfg.launcher_pid = launcher;
  cfg.take_sample = false;  // Fig. 6 measures launch+connect only
  if (mode == tools::stat::StartupMode::AdHocRsh) {
    for (int i = 0; i < ndaemons; ++i) {
      cfg.adhoc_hosts.push_back(tc.machine.compute_node(i).hostname());
    }
  }
  tools::stat::StatOutcome out;
  cluster::SpawnOptions opts;
  opts.executable = "stat_fe";
  opts.image_mb = 12.0;
  auto res = tc.machine.front_end().spawn(
      std::make_unique<tools::stat::StatFe>(std::move(cfg), &out),
      std::move(opts));
  if (!res.is_ok()) {
    pt.error = res.status.to_string();
    return pt;
  }
  tc.run_until([&] { return out.done; }, sim::seconds(1800));
  pt.done = out.done;
  if (!out.done) {
    pt.error = "timeout";
    return pt;
  }
  if (!out.status.is_ok()) {
    pt.error = out.status.to_string();
    return pt;
  }
  pt.ok = true;
  pt.launch_connect_s = out.launch_connect_seconds();
  pt.handshake_s = out.handshake_seconds();
  return pt;
}

inline StatBenchReport run_stat_sweep(const StatBenchOptions& opts) {
  StatBenchReport report;
  report.tasks_per_daemon = opts.tasks_per_daemon;
  report.scales = opts.scales;
  for (int n : opts.scales) {
    report.points.push_back(run_stat_point(n, opts.tasks_per_daemon,
                                           tools::stat::StartupMode::AdHocRsh,
                                           &report.metrics));
    report.points.push_back(run_stat_point(n, opts.tasks_per_daemon,
                                           tools::stat::StartupMode::LaunchMon,
                                           &report.metrics));
  }
  report.gather = run_gather_sweep(opts.gather);
  // Seed the gauge table so the metrics block's shape is scale-independent.
  report.metrics.set_gauge("bench.points",
                           static_cast<double>(report.points.size()));
  report.metrics.set_gauge("bench.tasks_per_daemon",
                           static_cast<double>(opts.tasks_per_daemon));
  return report;
}

inline std::string to_json(const StatBenchReport& r) {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"fig6_stat\",\n";
  out += "  \"deterministic\": true,\n";
  out += "  \"tasks_per_daemon\": " + std::to_string(r.tasks_per_daemon) +
         ",\n";
  out += "  \"scales\": [";
  for (std::size_t i = 0; i < r.scales.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(r.scales[i]);
  }
  out += "],\n";
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const StatBenchPoint& p = r.points[i];
    out += "    {\"daemons\": " + std::to_string(p.daemons) +
           ", \"mode\": \"" + p.mode + "\", \"ok\": " +
           (p.ok ? "true" : "false") +
           ", \"done\": " + (p.done ? "true" : "false") + ", \"error\": \"" +
           p.error + "\", \"launch_connect_s\": " +
           jsonv::num(p.launch_connect_s) +
           ", \"handshake_s\": " + jsonv::num(p.handshake_s) + "}";
    if (i + 1 != r.points.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"gather_sweep\": " + gather_sweep_json(r.gather, 2) + ",\n";
  out += "  \"metrics\": " + r.metrics.to_json(2) + "\n";
  out += "}\n";
  return out;
}

}  // namespace lmon::bench
