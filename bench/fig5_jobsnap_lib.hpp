// fig5_jobsnap_lib.hpp - the jobsnap scaling sweep (paper Figure 5) shared
// by bench_fig5_jobsnap and the bench-schema golden test.
//
// Each point runs a full jobsnap session (launch the MPI job, attach, spawn
// the tool daemons, snapshot) over a fresh simulated cluster and reports
// the total wall time plus the slice spent inside LaunchMON's
// init->attachAndSpawn. A Metrics registry rides along on every run and
// accumulates protocol-level counters across the whole sweep; the snapshot
// embeds into the --json report.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bench/ablation_rsh_lib.hpp"  // jsonv::num / json_shape
#include "bench/bench_util.hpp"
#include "bench/gather_sweep_lib.hpp"
#include "tools/jobsnap/jobsnap_be.hpp"
#include "tools/jobsnap/jobsnap_fe.hpp"

namespace lmon::bench {

struct JobsnapOptions {
  std::vector<int> scales{16, 32, 64, 128, 256, 384, 512, 768, 1024};
  int tasks_per_daemon = 8;
  /// Upstream-plane sweep riding along: jobsnap is gather-dominated
  /// (snapshots flow up), so this bench carries the gather protocol sweep
  /// over the topologies jobsnap-like fan-ins use.
  GatherSweepOptions gather;

  /// Toy scale for smoke runs and the golden-schema test: the identical
  /// code path, seconds not minutes.
  static JobsnapOptions smoke() {
    JobsnapOptions o;
    o.scales = {16, 32};
    o.gather = o.gather.smoke();
    return o;
  }
};

struct JobsnapPoint {
  int daemons = 0;
  int tasks = 0;
  bool ok = false;
  double total_s = 0;          ///< jobsnap start -> snapshot done
  double init_to_spawn_s = 0;  ///< LMON init -> attachAndSpawn returned
};

struct JobsnapReport {
  int tasks_per_daemon = 1;
  std::vector<int> scales;
  std::vector<JobsnapPoint> points;
  /// Upstream gather protocol sweep (model-gated; see gather_sweep_lib.hpp).
  GatherSweepReport gather;
  /// Protocol counters accumulated over every swept point.
  obs::Metrics metrics;
};

/// One jobsnap session at `ndaemons` daemons. Metrics (and the --trace-out
/// tracer, when enabled) attach for the duration of the run.
inline JobsnapPoint run_jobsnap_point(int ndaemons, int tpn,
                                      obs::Metrics* metrics) {
  TestCluster tc(ndaemons);
  ScopedTrace trace(tc, metrics);
  tools::jobsnap::JobsnapBe::install(tc.machine);
  JobsnapPoint pt;
  pt.daemons = ndaemons;
  pt.tasks = ndaemons * tpn;
  const cluster::Pid launcher = start_plain_job(tc, ndaemons, tpn);
  if (launcher == cluster::kInvalidPid) return pt;

  tools::jobsnap::JobsnapOutcome out;
  cluster::SpawnOptions opts;
  opts.executable = "jobsnap_fe";
  opts.image_mb = 3.0;
  auto res = tc.machine.front_end().spawn(
      std::make_unique<tools::jobsnap::JobsnapFe>(launcher, &out),
      std::move(opts));
  if (!res.is_ok()) return pt;
  tc.run_until([&] { return out.done; }, sim::seconds(900));
  if (!out.done || !out.status.is_ok()) return pt;

  pt.ok = true;
  pt.total_s = sim::to_seconds(out.t_done - out.t_start);
  pt.init_to_spawn_s = sim::to_seconds(out.t_spawned - out.t_start);
  return pt;
}

inline JobsnapReport run_jobsnap_sweep(const JobsnapOptions& opts) {
  JobsnapReport report;
  report.tasks_per_daemon = opts.tasks_per_daemon;
  report.scales = opts.scales;
  for (int n : opts.scales) {
    report.points.push_back(
        run_jobsnap_point(n, opts.tasks_per_daemon, &report.metrics));
  }
  report.gather = run_gather_sweep(opts.gather);
  // Seed the gauge table so the metrics block's shape is scale-independent
  // (an instrument-free sweep would otherwise emit an empty array).
  report.metrics.set_gauge("bench.points",
                           static_cast<double>(report.points.size()));
  report.metrics.set_gauge("bench.tasks_per_daemon",
                           static_cast<double>(opts.tasks_per_daemon));
  return report;
}

inline std::string to_json(const JobsnapReport& r) {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"fig5_jobsnap\",\n";
  out += "  \"deterministic\": true,\n";
  out += "  \"tasks_per_daemon\": " + std::to_string(r.tasks_per_daemon) +
         ",\n";
  out += "  \"scales\": [";
  for (std::size_t i = 0; i < r.scales.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(r.scales[i]);
  }
  out += "],\n";
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const JobsnapPoint& p = r.points[i];
    out += "    {\"daemons\": " + std::to_string(p.daemons) +
           ", \"tasks\": " + std::to_string(p.tasks) +
           ", \"ok\": " + (p.ok ? "true" : "false") +
           ", \"total_s\": " + jsonv::num(p.total_s) +
           ", \"init_to_spawn_s\": " + jsonv::num(p.init_to_spawn_s) + "}";
    if (i + 1 != r.points.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"gather_sweep\": " + gather_sweep_json(r.gather, 2) + ",\n";
  out += "  \"metrics\": " + r.metrics.to_json(2) + "\n";
  out += "}\n";
  return out;
}

}  // namespace lmon::bench
