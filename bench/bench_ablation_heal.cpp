// bench_ablation_heal - the self-healing availability sweep: correlated
// comm-daemon failures (a fraction of the non-root ranks dying at once,
// spread across tree depths) x fabric topology, measuring time-to-recovery
// and verifying a full broadcast + gather over the healed tree loses and
// duplicates nothing.
//
// Expected shape: recovery time is dominated by the orphans' climb
// (a few connect retries per dead ancestor) plus the adopter handshake, so
// it grows with the depth of the deepest orphan, not with the failure
// count - correlated losses heal in parallel. Flat trees recover fastest
// (every orphan is one hop from the root); deep k-ary trees pay the climb.
//
// Flags:
//   --json        machine-readable report (schema under golden test; see
//                 tests/integration/bench_schema_test.cpp)
//   --nodes=N     daemons per session (default 16; smoke uses 8)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/ablation_heal_lib.hpp"
#include "common/argparse.hpp"

namespace lmon {
namespace {

void print_table(const bench::HealAblationReport& report) {
  bench::print_title(
      "Ablation: self-healing availability (correlated kills x topology)");
  std::printf("%10s %9s %7s %10s | %10s %11s %9s %5s %4s\n", "topology",
              "fraction", "killed", "survivors", "recovery", "reattaches",
              "adoptions", "lost", "dup");
  for (const auto& p : report.points) {
    std::printf("%10s %8.3f%% %7d %10d |", p.topology.c_str(),
                p.kill_fraction * 100.0, p.killed, p.survivors);
    if (!p.recovered) {
      std::printf(" %10s", "FAIL");
    } else {
      std::printf(" %9.4fs", p.recovery_s);
    }
    std::printf(" %11.0f %9.0f %5d %4d\n", p.reattaches, p.adoptions,
                p.lost_payloads, p.duplicate_deliveries);
  }
  std::printf(
      "\nmax recovery: %.4fs (gate: %.1fs); lost payloads: %d (gate: 0); "
      "duplicates: %d (gate: 0); give-ups: %.0f (gate: 0)\n",
      report.max_recovery_s, report.recovery_gate_s,
      report.total_lost_payloads, report.total_duplicates,
      report.total_give_ups);
  std::printf(
      "shape: orphans climb past dead ancestors in parallel, so recovery "
      "tracks the deepest\norphan's climb, not the failure count; flat "
      "fan-out recovers in one hop.\n");
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (arg != "--json" && arg.rfind("--nodes=", 0) != 0 &&
        !bench::common_flag(arg)) {
      std::fprintf(stderr,
                   "usage: %s [--json] [--nodes=N] [--trace-out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  bench::set_trace_out(args);
  bench::HealAblationOptions opts;
  if (bench::smoke_mode()) opts = bench::HealAblationOptions::smoke();
  opts.nodes =
      static_cast<int>(arg_int(args, "--nodes=").value_or(opts.nodes));
  if (opts.nodes < 4) {
    std::fprintf(stderr, "bad --nodes (need >= 4)\n");
    return 2;
  }
  const bool json =
      std::find(args.begin(), args.end(), "--json") != args.end();

  const bench::HealAblationReport report = bench::run_heal_ablation(opts);
  if (json) {
    std::fputs(bench::to_json(report).c_str(), stdout);
  } else {
    print_table(report);
  }
  // Gate: every point heals inside the budget, and the healed fabric
  // neither loses nor duplicates a single payload anywhere on the sweep.
  return (report.all_recovered &&
          report.max_recovery_s <= report.recovery_gate_s &&
          report.total_lost_payloads == 0 && report.total_duplicates == 0 &&
          report.total_give_ups == 0)
             ? 0
             : 1;
}
