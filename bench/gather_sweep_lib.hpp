// gather_sweep_lib.hpp - the ICCL eager/rendezvous *gather* sweep embedded
// in the fig5 (jobsnap) and fig6 (STAT) benches.
//
// Jobsnap and STAT are upstream-dominated tools: the payload that matters
// is what the back ends send toward the root, not what the root fans out.
// This sweep measures fleet-wide gather latency (root's go signal to the
// root delivering the sorted contributions) for payload x topology x
// protocol, pins every point against core::PerfModel::collective_gather(),
// and compares the measured eager->rendezvous crossover against the
// analytic collective_gather_crossover() solver. Protocols are forced
// through the real session option (SpawnConfig::rndv_threshold_bytes), so
// the sweep drives the identical upstream path the tools use.
//
// Payload-grid constraint: points must be <= one chunk (64 KiB) or an
// exact multiple of it. The model replays chunk-cursor ties exactly only
// when every in-flight chunk is the same size; a ragged tail chunk makes
// interior-node enqueue ties placement-dependent and the residual gate
// meaningless. The crossover interpolation therefore uses the coarse grid
// (reported, not gated), unlike the bcast ablation's segment refinement.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/ablation_iccl_lib.hpp"  // last_loss_index / interpolate_crossover
#include "bench/bench_util.hpp"
#include "core/be_api.hpp"
#include "core/fe_api.hpp"
#include "core/perf_model.hpp"

namespace lmon::bench {

struct GatherSweepOptions {
  int nodes = 32;
  /// Per-rank contribution sizes (bytes), ascending; every point <= chunk
  /// or a whole multiple of it (see the header comment).
  std::vector<std::size_t> payloads = {1u << 10, 8u << 10, 64u << 10,
                                       256u << 10, 1u << 20};
  std::vector<comm::TopologySpec> topologies = {
      {comm::TopologyKind::KAry, 4},
      {comm::TopologyKind::Binomial, 0},
      {comm::TopologyKind::Flat, 0}};

  /// Toy scale for smoke runs and the golden-schema test. Keeps 1 MiB as
  /// the top payload: on a flat 8-node fabric the rendezvous handshake only
  /// amortizes around there, and the wins-at-max gate must stay meaningful.
  [[nodiscard]] GatherSweepOptions smoke() const {
    GatherSweepOptions o = *this;
    o.nodes = 8;
    o.payloads = {1u << 10, 64u << 10, 1u << 20};
    if (o.topologies.size() > 2) {
      o.topologies = {o.topologies.front(), o.topologies.back()};
    }
    return o;
  }
};

struct GatherSweepPoint {
  std::string topology;
  std::string protocol;  ///< "eager" | "rendezvous"
  std::size_t payload_bytes = 0;
  bool measured_ok = false;
  double measured_s = -1.0;
  double model_s = -1.0;
  double residual_pct = 0.0;  ///< (model - measured) / measured * 100
};

struct GatherCrossoverPoint {
  std::string topology;
  /// Coarse-grid interpolation of where measured rendezvous overtakes
  /// measured eager (-1: rendezvous never wins on the grid).
  double measured_bytes = -1.0;
  /// PerfModel::collective_gather_crossover() (-1: never in range).
  double model_bytes = -1.0;
  double agreement_pct = 0.0;  ///< informational, not gated (coarse grid)
  /// Rendezvous beat eager at the largest swept payload on this topology.
  bool rendezvous_wins_at_max = false;
};

struct GatherSweepReport {
  int nodes = 0;
  std::uint32_t chunk_bytes = 0;
  std::vector<std::size_t> payloads;
  std::vector<std::string> topologies;
  std::vector<std::string> protocols;
  std::vector<GatherSweepPoint> points;
  std::vector<GatherCrossoverPoint> crossovers;
  double max_abs_residual_pct = 0.0;
  bool rendezvous_wins_at_max_everywhere = false;
  int measurement_failures = 0;

  /// The bench exit gate: tight residuals everywhere, every session
  /// measured, and the headline claim - the rendezvous gather beats eager
  /// at the largest swept payload on every topology.
  [[nodiscard]] bool gate_ok() const {
    return max_abs_residual_pct <= 15.0 &&
           rendezvous_wins_at_max_everywhere && measurement_failures == 0;
  }
};

namespace gather_sweep {

/// Shared observation state for one (topology, protocol) session: per-round
/// master go-issue time and root delivery time.
struct SweepState {
  std::vector<std::size_t> payloads;
  std::vector<sim::Time> issue;
  std::vector<sim::Time> done_at;
  std::vector<bool> gathered_ok;
  int ranks_done = 0;
};

/// BE daemon running the scripted gather sweep. Each round: every rank
/// arms a waiter for the empty go broadcast, a barrier proves the fleet is
/// armed, the master stamps the issue time and releases the go (its own
/// delivery fires synchronously), and every rank contributes the round's
/// payload the moment its go lands - the exact timeline
/// PerfModel::collective_gather() replays. Rounds are sequenced by the
/// master's gather completion: non-masters pre-arm the next round right
/// after contributing (collective rounds are matched by per-primitive
/// counters, so overlapping a still-draining gather is safe), while the
/// master joins the next barrier only once the contributions landed.
class SweepDaemon : public cluster::Program {
 public:
  explicit SweepDaemon(SweepState* state) : state_(state) {}
  [[nodiscard]] std::string_view name() const override {
    return "gather_sweep_be";
  }

  void on_start(cluster::Process& self) override {
    be_ = std::make_unique<core::BackEnd>(self);
    core::BackEnd::Callbacks cbs;
    cbs.on_init = [](const core::Rpdtab&, const Bytes&,
                     std::function<void(Status)> done) { done(Status::ok()); };
    cbs.on_ready = [this, &self](Status st) {
      if (!st.is_ok()) return;
      nodes_ = static_cast<int>(be_->size());
      round(self, 0);
    };
    (void)be_->init(std::move(cbs));
  }

  static void install(cluster::Machine& machine, SweepState* state) {
    cluster::ProgramImage image;
    image.image_mb = 2.0;
    image.factory = [state](const std::vector<std::string>&) {
      return std::make_unique<SweepDaemon>(state);
    };
    machine.install_program("gather_sweep_be", std::move(image));
  }

 private:
  void round(cluster::Process& self, std::size_t i) {
    if (i == state_->payloads.size()) {
      state_->ranks_done += 1;
      return;
    }
    auto on_go = [this, &self, i](const Bytes&) {
      be_->gather(
          Bytes(state_->payloads[i], 0xA5),
          [this, &self,
           i](std::vector<std::pair<std::uint32_t, Bytes>> entries) {
            state_->done_at[i] = self.sim().now();
            bool ok = static_cast<int>(entries.size()) == nodes_;
            for (const auto& [rank, data] : entries) {
              ok = ok && data.size() == state_->payloads[i];
            }
            state_->gathered_ok[i] = ok;
            round(self, i + 1);
          });
      if (!be_->is_master()) round(self, i + 1);
    };
    if (be_->is_master()) {
      be_->barrier([this, &self, i, on_go] {
        state_->issue[i] = self.sim().now();
        be_->broadcast({}, on_go);
      });
    } else {
      be_->broadcast({}, on_go);
      be_->barrier([] {});
    }
  }

  SweepState* state_;
  std::unique_ptr<core::BackEnd> be_;
  int nodes_ = 0;
};

}  // namespace gather_sweep

/// Runs one session pinned to a protocol (threshold 1 forces rendezvous for
/// any non-empty contribution - the empty go broadcast and the barrier's
/// internal rounds stay eager - UINT32_MAX forces eager) and measures every
/// payload round. Returns one latency (seconds) per payload; -1 on failure.
inline std::vector<double> measure_gather_sweep(
    const comm::TopologySpec& topo, int nodes, std::uint32_t threshold,
    const std::vector<std::size_t>& payloads) {
  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  TestCluster tc(nodes, 0, costs);
  ScopedTrace trace(tc);
  gather_sweep::SweepState state;
  state.payloads = payloads;
  state.issue.assign(payloads.size(), 0);
  state.done_at.assign(payloads.size(), 0);
  state.gathered_ok.assign(payloads.size(), false);
  gather_sweep::SweepDaemon::install(tc.machine, &state);

  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "gather_sweep_be";
    cfg.topology = topo;
    cfg.rndv_threshold_bytes = threshold;
    rm::JobSpec job{nodes, 1, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [](Status) {});
  });
  const bool ok = tc.run_until([&] { return state.ranks_done == nodes; },
                               sim::seconds(1800));
  std::vector<double> out(payloads.size(), -1.0);
  if (!ok) return out;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    if (state.gathered_ok[i]) {
      out[i] = sim::to_seconds(state.done_at[i] - state.issue[i]);
    }
  }
  return out;
}

inline GatherSweepReport run_gather_sweep(const GatherSweepOptions& opts) {
  GatherSweepReport report;
  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  const core::PerfModel model(
      costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
  report.nodes = opts.nodes;
  report.chunk_bytes = costs.iccl_rndv_chunk_bytes;
  report.payloads = opts.payloads;
  report.protocols = {
      std::string(core::to_string(core::CollectiveProtocol::Eager)),
      std::string(core::to_string(core::CollectiveProtocol::Rendezvous))};
  report.rendezvous_wins_at_max_everywhere = true;

  for (const auto& topo : opts.topologies) {
    report.topologies.push_back(topo.to_string());
    const std::vector<double> eager = measure_gather_sweep(
        topo, opts.nodes, std::numeric_limits<std::uint32_t>::max(),
        opts.payloads);
    const std::vector<double> rndv =
        measure_gather_sweep(topo, opts.nodes, 1, opts.payloads);

    for (int proto_idx = 0; proto_idx < 2; ++proto_idx) {
      const auto proto = proto_idx == 0 ? core::CollectiveProtocol::Eager
                                        : core::CollectiveProtocol::Rendezvous;
      const auto& measured = proto_idx == 0 ? eager : rndv;
      for (std::size_t i = 0; i < opts.payloads.size(); ++i) {
        GatherSweepPoint pt;
        pt.topology = topo.to_string();
        pt.protocol = std::string(core::to_string(proto));
        pt.payload_bytes = opts.payloads[i];
        pt.measured_s = measured[i];
        pt.measured_ok = measured[i] >= 0.0;
        pt.model_s =
            model.collective_gather(proto, topo, opts.nodes, opts.payloads[i]);
        if (pt.measured_ok && pt.measured_s > 0.0) {
          pt.residual_pct =
              (pt.model_s - pt.measured_s) / pt.measured_s * 100.0;
          report.max_abs_residual_pct = std::max(report.max_abs_residual_pct,
                                                 std::abs(pt.residual_pct));
        } else {
          report.measurement_failures += 1;
        }
        report.points.push_back(std::move(pt));
      }
    }

    GatherCrossoverPoint cx;
    cx.topology = topo.to_string();
    const auto loss = last_loss_index(eager, rndv);
    if (loss && *loss == opts.payloads.size()) {
      cx.measured_bytes = static_cast<double>(opts.payloads.front());
    } else if (loss && *loss + 1 < opts.payloads.size()) {
      cx.measured_bytes =
          interpolate_crossover(opts.payloads, eager, rndv, *loss);
    }
    cx.model_bytes = static_cast<double>(
        model.collective_gather_crossover(topo, opts.nodes,
                                          opts.payloads.back())
            .value_or(0));
    if (cx.model_bytes == 0) cx.model_bytes = -1.0;
    const std::size_t last = opts.payloads.size() - 1;
    cx.rendezvous_wins_at_max =
        eager[last] >= 0 && rndv[last] >= 0 && rndv[last] < eager[last];
    if (!cx.rendezvous_wins_at_max) {
      report.rendezvous_wins_at_max_everywhere = false;
    }
    if (cx.measured_bytes > 0 && cx.model_bytes > 0) {
      const double floor_b = static_cast<double>(opts.payloads.front());
      const double measured_c = std::max(cx.measured_bytes, floor_b);
      const double model_c = std::max(cx.model_bytes, floor_b);
      cx.agreement_pct = (model_c - measured_c) / measured_c * 100.0;
    }
    report.crossovers.push_back(std::move(cx));
  }
  return report;
}

/// Emits the report as a JSON object (no trailing newline) indented by
/// `indent` spaces, for embedding as a "gather_sweep" value inside the
/// fig5/fig6 reports.
inline std::string gather_sweep_json(const GatherSweepReport& r, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out;
  out += "{\n";
  out += pad + "  \"nodes\": " + std::to_string(r.nodes) + ",\n";
  out += pad + "  \"chunk_bytes\": " + std::to_string(r.chunk_bytes) + ",\n";
  out += pad + "  \"payloads\": [";
  for (std::size_t i = 0; i < r.payloads.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(r.payloads[i]);
  }
  out += "],\n";
  out += pad + "  \"topologies\": [";
  for (std::size_t i = 0; i < r.topologies.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + r.topologies[i] + "\"";
  }
  out += "],\n";
  out += pad + "  \"protocols\": [";
  for (std::size_t i = 0; i < r.protocols.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + r.protocols[i] + "\"";
  }
  out += "],\n";
  out += pad + "  \"points\": [\n";
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const GatherSweepPoint& p = r.points[i];
    out += pad + "    {\"topology\": \"" + p.topology + "\", \"protocol\": \"" +
           p.protocol +
           "\", \"payload_bytes\": " + std::to_string(p.payload_bytes) +
           ", \"measured_ok\": " + (p.measured_ok ? "true" : "false") +
           ", \"measured_s\": " + jsonv::num(p.measured_s) +
           ", \"model_s\": " + jsonv::num(p.model_s) +
           ", \"residual_pct\": " + jsonv::num(p.residual_pct) + "}";
    if (i + 1 != r.points.size()) out += ",";
    out += "\n";
  }
  out += pad + "  ],\n";
  out += pad + "  \"crossovers\": [\n";
  for (std::size_t i = 0; i < r.crossovers.size(); ++i) {
    const GatherCrossoverPoint& c = r.crossovers[i];
    out += pad + "    {\"topology\": \"" + c.topology +
           "\", \"measured_bytes\": " + jsonv::num(c.measured_bytes) +
           ", \"model_bytes\": " + jsonv::num(c.model_bytes) +
           ", \"agreement_pct\": " + jsonv::num(c.agreement_pct) +
           ", \"rendezvous_wins_at_max\": " +
           (c.rendezvous_wins_at_max ? "true" : "false") + "}";
    if (i + 1 != r.crossovers.size()) out += ",";
    out += "\n";
  }
  out += pad + "  ],\n";
  out += pad + "  \"max_abs_residual_pct\": " +
         jsonv::num(r.max_abs_residual_pct) + ",\n";
  out += pad + "  \"rendezvous_wins_at_max_everywhere\": " +
         std::string(r.rendezvous_wins_at_max_everywhere ? "true" : "false") +
         ",\n";
  out += pad + "  \"measurement_failures\": " +
         std::to_string(r.measurement_failures) + "\n";
  out += pad + "}";
  return out;
}

/// Human-readable table for the bench's default (non---json) output.
inline void print_gather_table(const GatherSweepReport& report) {
  std::printf(
      "\nupstream gather sweep (per-rank payload; go-signal to root "
      "delivery):\n");
  std::printf("%10s %11s %10s | %11s %11s %9s\n", "topology", "protocol",
              "payload", "measured", "model", "residual");
  for (const auto& p : report.points) {
    std::printf("%10s %11s %9zuK |", p.topology.c_str(), p.protocol.c_str(),
                p.payload_bytes / 1024);
    if (!p.measured_ok) {
      std::printf(" %10s", "FAIL");
    } else {
      std::printf(" %9.4fs", p.measured_s);
    }
    std::printf(" %10.4fs", p.model_s);
    if (p.measured_ok) {
      std::printf(" %8.1f%%", p.residual_pct);
    } else {
      std::printf(" %9s", "-");
    }
    std::printf("\n");
  }
  std::printf("gather crossovers (eager -> rendezvous per-rank payload):\n");
  for (const auto& c : report.crossovers) {
    std::printf("  %10s  measured ~%8.0f B  model %8.0f B%s\n",
                c.topology.c_str(), c.measured_bytes, c.model_bytes,
                c.rendezvous_wins_at_max ? "" : "  [rndv never wins!]");
  }
  std::printf(
      "max |model - measured| residual: %.1f%% (gate: 15%%); rendezvous wins "
      "at max payload: %s\n",
      report.max_abs_residual_pct,
      report.rendezvous_wins_at_max_everywhere ? "yes (all topologies)"
                                               : "NO");
}

}  // namespace lmon::bench
