// bench_fig6_stat - reproduces paper Figure 6: "STAT Start-up Performance",
// MRNet-native (serial rsh) vs LaunchMON daemon launch + TBON connect time
// over a 1-deep (1-to-N) topology, 8 MPI tasks per daemon.
//
// Paper anchors: 0.77 s (MRNet) vs 0.46 s (LaunchMON) at 4 nodes;
// 60.8 s vs 3.57 s at 256 nodes (0.77 s of the 3.57 s in MRNet's
// handshake); the ad hoc approach consistently fails forking rsh at 512
// nodes (would extrapolate to ~2 minutes), while LaunchMON takes 5.6 s.
//
// Flags:
//   --json              emit the machine-readable report (schema under
//                       golden test; tests/integration/bench_schema_test.cpp)
//   --trace-out=<path>  export a Chrome/Perfetto trace of the last swept
//                       point (also via LMON_TRACE_OUT)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/fig6_stat_lib.hpp"

namespace lmon {
namespace {

void print_table(const bench::StatBenchReport& report) {
  bench::print_title(
      "Figure 6: STAT launch+connect, MRNet (serial rsh) vs LaunchMON, "
      "1-deep topology");
  std::printf("%8s | %18s | %14s %14s\n", "daemons", "MRNet 1-deep",
              "LaunchMON", "(TBON hshake)");

  double slope = 0;  // fitted serial-rsh per-node cost for extrapolation
  int last_ok_n = 0;
  double last_ok_t = 0;
  // Points come in (adhoc, launchmon) pairs per scale.
  for (std::size_t i = 0; i + 1 < report.points.size(); i += 2) {
    const bench::StatBenchPoint& adhoc = report.points[i];
    const bench::StatBenchPoint& lmon = report.points[i + 1];
    const int n = adhoc.daemons;

    char adhoc_col[64];
    if (adhoc.ok) {
      std::snprintf(adhoc_col, sizeof adhoc_col, "%13.2fs",
                    adhoc.launch_connect_s);
      if (last_ok_n > 0) {
        slope = (adhoc.launch_connect_s - last_ok_t) / (n - last_ok_n);
      }
      last_ok_n = n;
      last_ok_t = adhoc.launch_connect_s;
    } else {
      // The paper's 512-node behaviour: "consistently fails when forking an
      // rsh process. If it had succeeded ... approximately two minutes."
      const double extrapolated = last_ok_t + slope * (n - last_ok_n);
      std::snprintf(adhoc_col, sizeof adhoc_col, "FAIL (~%.0fs est)",
                    extrapolated);
    }
    if (lmon.ok) {
      std::printf("%8d | %18s | %13.2fs %13.2fs\n", n, adhoc_col,
                  lmon.launch_connect_s, lmon.handshake_s);
    } else {
      std::printf("%8d | %18s | FAILED: %s\n", n, adhoc_col,
                  lmon.error.c_str());
    }
  }
  std::printf(
      "\npaper anchors: 0.77 s vs 0.46 s at 4 nodes; 60.8 s vs 3.57 s at "
      "256; rsh fork failure at 512\n(extrapolating to ~2 minutes) while "
      "LaunchMON launches all daemons in 5.6 s.\n");
  bench::print_gather_table(report.gather);
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (arg != "--json" && !bench::common_flag(arg)) {
      std::fprintf(stderr, "usage: %s [--json] [--trace-out=PATH]\n", argv[0]);
      return 2;
    }
  }
  bench::set_trace_out(args);
  const bool json =
      std::find(args.begin(), args.end(), "--json") != args.end();

  const bench::StatBenchOptions opts = bench::smoke_mode()
                                           ? bench::StatBenchOptions::smoke()
                                           : bench::StatBenchOptions{};
  const bench::StatBenchReport report = bench::run_stat_sweep(opts);
  if (json) {
    std::fputs(bench::to_json(report).c_str(), stdout);
  } else {
    print_table(report);
  }
  // Gate: the upstream gather sweep holds its residual /
  // rendezvous-wins-at-max claims. (Swept launch points are NOT gated on
  // ok: the 512-node ad hoc rsh failure is the paper's expected result.)
  return report.gather.gate_ok() ? 0 : 1;
}
