// bench_fig6_stat - reproduces paper Figure 6: "STAT Start-up Performance",
// MRNet-native (serial rsh) vs LaunchMON daemon launch + TBON connect time
// over a 1-deep (1-to-N) topology, 8 MPI tasks per daemon.
//
// Paper anchors: 0.77 s (MRNet) vs 0.46 s (LaunchMON) at 4 nodes;
// 60.8 s vs 3.57 s at 256 nodes (0.77 s of the 3.57 s in MRNet's
// handshake); the ad hoc approach consistently fails forking rsh at 512
// nodes (would extrapolate to ~2 minutes), while LaunchMON takes 5.6 s.
#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "tbon/comm_node.hpp"
#include "tools/stat/stat_be.hpp"
#include "tools/stat/stat_fe.hpp"

namespace lmon {
namespace {

struct Point {
  bool ok = false;
  bool done = false;
  std::string error;
  double launch_connect = 0;
  double handshake = 0;
};

Point run_once(int ndaemons, int tpn, tools::stat::StartupMode mode) {
  bench::TestCluster tc(ndaemons);
  tools::stat::StatBe::install(tc.machine);
  tbon::AdHocCommNode::install(tc.machine);
  tbon::LmonCommNode::install(tc.machine);

  Point pt;
  const cluster::Pid launcher = bench::start_plain_job(tc, ndaemons, tpn);
  if (launcher == cluster::kInvalidPid) return pt;

  tools::stat::StatConfig cfg;
  cfg.mode = mode;
  cfg.launcher_pid = launcher;
  cfg.take_sample = false;  // Fig. 6 measures launch+connect only
  if (mode == tools::stat::StartupMode::AdHocRsh) {
    for (int i = 0; i < ndaemons; ++i) {
      cfg.adhoc_hosts.push_back(tc.machine.compute_node(i).hostname());
    }
  }
  tools::stat::StatOutcome out;
  cluster::SpawnOptions opts;
  opts.executable = "stat_fe";
  opts.image_mb = 12.0;
  auto res = tc.machine.front_end().spawn(
      std::make_unique<tools::stat::StatFe>(std::move(cfg), &out),
      std::move(opts));
  if (!res.is_ok()) return pt;
  tc.run_until([&] { return out.done; }, sim::seconds(1800));
  pt.done = out.done;
  if (!out.done) {
    pt.error = "timeout";
    return pt;
  }
  if (!out.status.is_ok()) {
    pt.error = out.status.to_string();
    return pt;
  }
  pt.ok = true;
  pt.launch_connect = out.launch_connect_seconds();
  pt.handshake = out.handshake_seconds();
  return pt;
}

}  // namespace
}  // namespace lmon

int main() {
  using namespace lmon;
  bench::print_title(
      "Figure 6: STAT launch+connect, MRNet (serial rsh) vs LaunchMON, "
      "1-deep topology");
  std::printf("%8s | %18s | %14s %14s\n", "daemons", "MRNet 1-deep",
              "LaunchMON", "(TBON hshake)");

  const int tpn = 8;
  double slope = 0;  // fitted serial-rsh per-node cost for extrapolation
  int last_ok_n = 0;
  double last_ok_t = 0;
  for (int n : bench::scales({4, 16, 64, 128, 256, 512}, {4, 16})) {
    const Point adhoc = run_once(n, tpn, tools::stat::StartupMode::AdHocRsh);
    const Point lmon = run_once(n, tpn, tools::stat::StartupMode::LaunchMon);

    char adhoc_col[64];
    if (adhoc.ok) {
      std::snprintf(adhoc_col, sizeof adhoc_col, "%13.2fs", adhoc.launch_connect);
      if (last_ok_n > 0) {
        slope = (adhoc.launch_connect - last_ok_t) / (n - last_ok_n);
      }
      last_ok_n = n;
      last_ok_t = adhoc.launch_connect;
    } else {
      // The paper's 512-node behaviour: "consistently fails when forking an
      // rsh process. If it had succeeded ... approximately two minutes."
      const double extrapolated = last_ok_t + slope * (n - last_ok_n);
      std::snprintf(adhoc_col, sizeof adhoc_col, "FAIL (~%.0fs est)",
                    extrapolated);
    }
    if (lmon.ok) {
      std::printf("%8d | %18s | %13.2fs %13.2fs\n", n, adhoc_col,
                  lmon.launch_connect, lmon.handshake);
    } else {
      std::printf("%8d | %18s | FAILED: %s\n", n, adhoc_col,
                  lmon.error.c_str());
    }
  }
  std::printf(
      "\npaper anchors: 0.77 s vs 0.46 s at 4 nodes; 60.8 s vs 3.57 s at "
      "256; rsh fork failure at 512\n(extrapolating to ~2 minutes) while "
      "LaunchMON launches all daemons in 5.6 s.\n");
  return 0;
}
