// bench_micro_protocol - google-benchmark microbenchmarks of the hot
// protocol-layer operations (real CPU time, not simulated time): LMONP
// encode/decode, RPDTAB pack/unpack, ICCL tree math, prefix-tree merging
// and the event queue.
#include <benchmark/benchmark.h>

#include "core/iccl.hpp"
#include "core/lmonp.hpp"
#include "core/rpdtab.hpp"
#include "simkernel/event_queue.hpp"
#include "simkernel/rng.hpp"
#include "tools/stat/prefix_tree.hpp"

namespace {

using namespace lmon;

void BM_LmonpEncode(benchmark::State& state) {
  core::LmonpMessage m = core::LmonpMessage::fe_daemon(
      core::MsgClass::FeBe, core::FeDaemonMsg::HandshakeInit,
      Bytes(static_cast<std::size_t>(state.range(0)), 0x42), Bytes(128, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.encode());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.wire_size()));
}
BENCHMARK(BM_LmonpEncode)->Range(64, 1 << 20);

void BM_LmonpDecode(benchmark::State& state) {
  core::LmonpMessage m = core::LmonpMessage::fe_daemon(
      core::MsgClass::FeBe, core::FeDaemonMsg::HandshakeInit,
      Bytes(static_cast<std::size_t>(state.range(0)), 0x42));
  const cluster::Message wire = m.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::LmonpMessage::decode(wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_LmonpDecode)->Range(64, 1 << 20);

core::Rpdtab make_table(int ntasks) {
  std::vector<rm::TaskDesc> entries;
  entries.reserve(static_cast<std::size_t>(ntasks));
  for (int i = 0; i < ntasks; ++i) {
    entries.push_back(rm::TaskDesc{"atlas" + std::to_string(i / 8 + 1),
                                   "mpi_app", 1000 + i, i});
  }
  return core::Rpdtab(std::move(entries));
}

void BM_RpdtabPack(benchmark::State& state) {
  const core::Rpdtab table = make_table(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.pack());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RpdtabPack)->Range(8, 1 << 14);

void BM_RpdtabUnpack(benchmark::State& state) {
  const Bytes packed = make_table(static_cast<int>(state.range(0))).pack();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Rpdtab::unpack(packed));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RpdtabUnpack)->Range(8, 1 << 14);

void BM_IcclSubtreeEnumeration(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Iccl::subtree_of(1, size, 32));
  }
}
BENCHMARK(BM_IcclSubtreeEnumeration)->Range(64, 1 << 16);

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < state.range(0); ++i) {
      q.push(static_cast<sim::Time>(rng.next_below(1'000'000)), [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EventQueuePushPop)->Range(64, 1 << 14);

tools::stat::PrefixTree make_tree(int ntraces, std::uint64_t seed) {
  static const char* frames[] = {"main", "solve", "halo", "MPI_Waitall",
                                 "io",   "bc",    "stencil"};
  sim::Rng rng(seed);
  tools::stat::PrefixTree t;
  for (int i = 0; i < ntraces; ++i) {
    std::vector<std::string> trace{"_start"};
    const auto depth = 2 + rng.next_below(4);
    for (std::uint64_t d = 0; d < depth; ++d) {
      trace.push_back(frames[rng.next_below(7)]);
    }
    t.add_trace(trace, i);
  }
  return t;
}

void BM_PrefixTreeMerge(benchmark::State& state) {
  const auto a = make_tree(static_cast<int>(state.range(0)), 1);
  const auto b = make_tree(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    tools::stat::PrefixTree merged;
    merged.merge(a);
    merged.merge(b);
    benchmark::DoNotOptimize(merged.node_count());
  }
}
BENCHMARK(BM_PrefixTreeMerge)->Range(16, 4096);

void BM_PrefixTreePackUnpack(benchmark::State& state) {
  const auto t = make_tree(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tools::stat::PrefixTree::unpack(t.pack()));
  }
}
BENCHMARK(BM_PrefixTreePackUnpack)->Range(16, 4096);

}  // namespace

BENCHMARK_MAIN();
