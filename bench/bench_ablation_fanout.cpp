// bench_ablation_fanout - ablation of DESIGN.md decision #1: the tree
// shape used for RM launch and the daemon bootstrap fabric. Sweeps the
// k-ary degree at fixed scale and, since the comm::Topology layer made the
// shape pluggable, also compares tree families; launchAndSpawn time is the
// metric.
//
// Usage: bench_ablation_fanout [--topo=kary|binomial|flat|all]
//   kary (default sweep): degree ablation, k in {1..128}
//   all: k-ary vs binomial vs flat at representative degrees
//
// Expected shape: very low fan-outs suffer deep trees (latency-dominated);
// very high fan-outs serialize at each parent (fan-out-dominated); the
// minimum sits in between - the reason SLURM-like RMs default to a few
// dozen. The binomial tree tracks the k-ary sweet spot without tuning (its
// degree falls off with depth), and flat is the serialization worst case.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/argparse.hpp"
#include "comm/topology.hpp"
#include "core/fe_api.hpp"

namespace lmon {
namespace {

double run_once(int ndaemons, comm::TopologySpec topo) {
  bench::TestCluster tc(ndaemons);
  bench::ScopedTrace trace(tc);
  bool done = false;
  Status status;
  sim::Time started = 0;
  sim::Time finished = 0;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    cfg.topology = topo;
    rm::JobSpec job{ndaemons, 8, "mpi_app", {}};
    started = self.sim().now();
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      status = st;
      finished = self.sim().now();
      done = true;
    });
  });
  tc.run_until([&] { return done; }, sim::seconds(900));
  if (!done || !status.is_ok()) return -1.0;
  return sim::to_seconds(finished - started);
}

void print_cell(double secs) {
  if (secs < 0) {
    std::printf("   FAIL ");
  } else {
    std::printf(" %7.3f", secs);
  }
}

void run_kary_sweep() {
  bench::print_title(
      "Ablation: launch/fabric k-ary fan-out (launchAndSpawn seconds)");
  std::printf("%8s |", "daemons");
  for (std::uint32_t k : {1, 2, 4, 8, 16, 32, 64, 128}) {
    std::printf("  k=%-5u", k);
  }
  std::printf("\n");
  for (int n : bench::scales({64, 256, 512}, {16})) {
    std::printf("%8d |", n);
    for (std::uint32_t k : {1, 2, 4, 8, 16, 32, 64, 128}) {
      print_cell(run_once(n, {comm::TopologyKind::KAry, k}));
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape: deep trees (k=1,2) pay per-level latency; flat trees "
      "(k>=64) serialize at the root;\nthe sweet spot sits at moderate "
      "degree, which is why the RM defaults to k=32.\n");
}

void run_shape_sweep(const std::vector<comm::TopologySpec>& shapes) {
  bench::print_title(
      "Ablation: fabric tree family (launchAndSpawn seconds)");
  std::printf("%8s |", "daemons");
  for (const auto& s : shapes) {
    std::printf(" %11s", s.to_string().c_str());
  }
  std::printf("\n");
  for (int n : bench::scales({64, 256, 512}, {16})) {
    std::printf("%8d |", n);
    for (const auto& s : shapes) {
      std::printf("    ");
      print_cell(run_once(n, s));
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape: binomial needs no degree tuning (its fan-out falls off "
      "with depth) and tracks the tuned\nk-ary optimum; flat is the "
      "1-deep worst case that serializes every send at the root.\n");
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  std::vector<std::string> args(argv + 1, argv + argc);
  bench::set_trace_out(args);
  const std::string topo = arg_value(args, "--topo=").value_or("kary");

  if (topo == "kary") {
    run_kary_sweep();
    return 0;
  }
  if (topo == "all") {
    run_shape_sweep({{comm::TopologyKind::KAry, 2},
                     {comm::TopologyKind::KAry, 32},
                     {comm::TopologyKind::Binomial, 0},
                     {comm::TopologyKind::Flat, 0}});
    return 0;
  }
  const auto spec = comm::TopologySpec::parse(topo);
  if (!spec) {
    std::fprintf(stderr,
                 "usage: bench_ablation_fanout "
                 "[--topo=kary|binomial|flat|kary:K|all]\n");
    return 2;
  }
  run_shape_sweep({*spec});
  return 0;
}
