// bench_ablation_fanout - ablation of DESIGN.md decision #1: the tree
// fan-out used for RM launch and the daemon bootstrap fabric. Sweeps the
// degree at fixed scale; launchAndSpawn time is the metric.
//
// Expected shape: very low fan-outs suffer deep trees (latency-dominated);
// very high fan-outs serialize at each parent (fan-out-dominated); the
// minimum sits in between - the reason SLURM-like RMs default to a few
// dozen.
#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "core/fe_api.hpp"

namespace lmon {
namespace {

double run_once(int ndaemons, std::uint32_t fanout) {
  bench::TestCluster tc(ndaemons);
  bool done = false;
  Status status;
  sim::Time started = 0;
  sim::Time finished = 0;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    cfg.fabric_fanout = fanout;
    rm::JobSpec job{ndaemons, 8, "mpi_app", {}};
    started = self.sim().now();
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      status = st;
      finished = self.sim().now();
      done = true;
    });
  });
  tc.run_until([&] { return done; }, sim::seconds(900));
  if (!done || !status.is_ok()) return -1.0;
  return sim::to_seconds(finished - started);
}

}  // namespace
}  // namespace lmon

int main() {
  using namespace lmon;
  bench::print_title(
      "Ablation: launch/fabric tree fan-out (launchAndSpawn seconds)");
  std::printf("%8s |", "daemons");
  for (std::uint32_t k : {1, 2, 4, 8, 16, 32, 64, 128}) {
    std::printf("  k=%-5u", k);
  }
  std::printf("\n");
  for (int n : {64, 256, 512}) {
    std::printf("%8d |", n);
    for (std::uint32_t k : {1, 2, 4, 8, 16, 32, 64, 128}) {
      const double secs = run_once(n, k);
      if (secs < 0) {
        std::printf("   FAIL ");
      } else {
        std::printf(" %7.3f", secs);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape: deep trees (k=1,2) pay per-level latency; flat trees "
      "(k>=64) serialize at the root;\nthe sweet spot sits at moderate "
      "degree, which is why the RM defaults to k=32.\n");
  return 0;
}
