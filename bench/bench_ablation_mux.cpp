// bench_ablation_mux - the persistent multiplexed service sweep: concurrent
// virtual sessions x arrival rate attaching onto one shared daemon tree,
// against the pre-refactor baseline where every session bootstraps its own
// engine + tree.
//
// Expected shape: baseline latency is the full bootstrap critical path
// (engine start + RM round trip + daemon spawn + fabric wiring), flat in
// the session count because it is paid per session. Virtual attach is one
// LMONP round trip plus one tree broadcast/gather, so its p99 sits orders
// of magnitude lower and degrades only gently as faster arrivals overlap
// ack gathers on the shared fabric. Throughput scales with the arrival
// rate until attaches queue on the master daemon's handshake.
//
// Flags:
//   --json        machine-readable report (schema under golden test; see
//                 tests/integration/bench_schema_test.cpp)
//   --nodes=N     daemons in the shared tree (default 8; smoke uses 4)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/ablation_mux_lib.hpp"
#include "common/argparse.hpp"

namespace lmon {
namespace {

void print_table(const bench::MuxAblationReport& report) {
  bench::print_title(
      "Ablation: persistent multiplexed service (sessions x arrival rate)");
  std::printf(
      "baseline (per-session bootstrap, %d samples): p50 %.3fms  p99 %.3fms"
      "  max %.3fms\n\n",
      report.baseline.measured, report.baseline.p50_ms,
      report.baseline.p99_ms, report.baseline.max_ms);
  std::printf("%9s %12s %9s %9s | %10s %10s %11s %9s\n", "sessions",
              "arrival_ms", "attached", "rejected", "p50_ms", "p99_ms",
              "thru(s/s)", "speedup");
  for (const auto& p : report.points) {
    std::printf("%9d %12.2f %9d %9d | %10.4f %10.4f %11.1f %8.1fx\n",
                p.sessions, p.arrival_interval_ms, p.attached, p.rejected,
                p.attach_p50_ms, p.attach_p99_ms, p.throughput_sps,
                p.speedup_p99);
  }
  std::printf(
      "\nmin p99 speedup at scale: %.1fx (gate: %.0fx); rejected: %d "
      "(gate: 0)\n",
      report.min_speedup_at_scale, report.speedup_gate,
      report.total_rejected);
  std::printf(
      "shape: the baseline pays the full bootstrap critical path per "
      "session; a virtual attach\npays one LMONP round trip plus one tree "
      "broadcast/gather, so p99 drops ~two orders.\n");
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (arg != "--json" && arg.rfind("--nodes=", 0) != 0 &&
        !bench::common_flag(arg)) {
      std::fprintf(stderr,
                   "usage: %s [--json] [--nodes=N] [--trace-out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  bench::set_trace_out(args);
  bench::MuxAblationOptions opts;
  if (bench::smoke_mode()) opts = bench::MuxAblationOptions::smoke();
  opts.nodes =
      static_cast<int>(arg_int(args, "--nodes=").value_or(opts.nodes));
  if (opts.nodes < 2) {
    std::fprintf(stderr, "bad --nodes (need >= 2)\n");
    return 2;
  }
  const bool json =
      std::find(args.begin(), args.end(), "--json") != args.end();

  const bench::MuxAblationReport report = bench::run_mux_ablation(opts);
  if (json) {
    std::fputs(bench::to_json(report).c_str(), stdout);
  } else {
    print_table(report);
  }
  // Gate: at scale (>= 64 concurrent sessions) the persistent tree's p99
  // attach sits speedup_gate-times below the bootstrap baseline, and no
  // arrival was ever rejected by admission control.
  return report.gate_met ? 0 : 1;
}
