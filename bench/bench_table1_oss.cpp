// bench_table1_oss - reproduces paper Table 1: "O|SS APAI Access Times".
//
// Time from initiating a performance experiment until O|SS has acquired
// all APAI (proctable) information, DPCL baseline vs LaunchMON integration,
// for 2..32 nodes.
//
// Paper anchors: DPCL ~33.8-34.7 s (flat; dominated by fully parsing the RM
// launcher binary); LaunchMON ~0.60-0.63 s (flat) - an improvement of
// nearly two orders of magnitude, roughly constant in node count.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "tools/dpcl/dpcl.hpp"
#include "tools/oss/instrumentor.hpp"

namespace lmon {
namespace {

template <typename InstrumentorT>
double acquire_seconds(bench::TestCluster& tc, cluster::Pid launcher) {
  tools::oss::ApaiResult result;
  bool done = false;
  auto instrumentor = std::make_shared<InstrumentorT>();
  tc.spawn_fe([&, instrumentor](cluster::Process& self) {
    instrumentor->acquire(self, launcher, [&](tools::oss::ApaiResult r) {
      result = std::move(r);
      done = true;
    });
  });
  tc.run_until([&] { return done; }, sim::seconds(3600));
  if (!done || !result.status.is_ok()) return -1.0;
  return sim::to_seconds(result.elapsed);
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (!bench::common_flag(arg)) {
      std::fprintf(stderr, "usage: %s [--trace-out=PATH]\n", argv[0]);
      return 2;
    }
  }
  bench::set_trace_out(args);
  bench::print_title("Table 1: O|SS APAI access times (seconds)");
  std::printf("%-12s", "Nodes");
  for (int n : bench::scales({2, 4, 8, 16, 32}, {2, 4})) std::printf("%10d", n);
  std::printf("\n");

  std::vector<double> dpcl_times;
  std::vector<double> lmon_times;
  for (int n : bench::scales({2, 4, 8, 16, 32}, {2, 4})) {
    {
      bench::TestCluster tc(n);
      bench::ScopedTrace trace(tc);
      tools::oss::OssBe::install(tc.machine);
      (void)tools::dpcl::install(tc.machine);
      const cluster::Pid launcher = bench::start_plain_job(tc, n, 8);
      dpcl_times.push_back(
          acquire_seconds<tools::oss::DpclInstrumentor>(tc, launcher));
    }
    {
      bench::TestCluster tc(n);
      bench::ScopedTrace trace(tc);
      tools::oss::OssBe::install(tc.machine);
      const cluster::Pid launcher = bench::start_plain_job(tc, n, 8);
      lmon_times.push_back(
          acquire_seconds<tools::oss::LmonInstrumentor>(tc, launcher));
    }
  }
  std::printf("%-12s", "DPCL");
  for (double t : dpcl_times) std::printf("%9.2fs", t);
  std::printf("\n%-12s", "LaunchMON");
  for (double t : lmon_times) std::printf("%9.3fs", t);
  std::printf(
      "\n\npaper anchors: DPCL 33.77-34.66 s (flat), LaunchMON 0.604-0.627 s "
      "(flat): the DPCL baseline\npays a full parse of the ~110 MB RM "
      "launcher image; LaunchMON reads the APAI directly.\n");
  return 0;
}
