// ablation_mux_lib.hpp - the persistent-multiplexed-service sweep shared
// by bench_ablation_mux and the bench-schema golden test.
//
// The paper's cost story is about *bootstrapping* a tool session: engine
// start, RM round trip, daemon spawn, fabric wiring. The persistent
// multiplexed service amortizes all of that across sessions: one owner
// bootstraps the tree, further sessions attach as virtual sessions in one
// LMONP round trip plus one tree broadcast/gather (see "Persistent
// multiplexed service" in docs/ARCHITECTURE.md). This sweep quantifies the
// refactor: for each concurrent-session count x arrival rate it drives S
// virtual attaches onto one shared tree, measures the attach-latency
// distribution and the attach throughput, and compares the p99 against a
// per-session-bootstrap baseline (each arrival launching its own engine +
// tree, the pre-refactor behaviour). The bench gates on the attach p99
// being `speedup_gate`x (default 10x) below the baseline p99 at scale
// (>= 64 concurrent sessions) with zero admission rejects.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/ablation_rsh_lib.hpp"  // jsonv helpers + json_shape
#include "bench/bench_util.hpp"
#include "core/fe_api.hpp"
#include "obs/metrics.hpp"

namespace lmon::bench {

struct MuxAblationOptions {
  int nodes = 8;  ///< daemons in the shared tree (and per baseline tree)
  /// Concurrent virtual sessions multiplexed onto one tree per point.
  std::vector<int> session_counts = {4, 16, 64, 512};
  /// Inter-arrival times of the attach requests (simulated milliseconds).
  std::vector<double> arrival_intervals_ms = {0.2, 1.0};
  /// Full bootstrap samples for the baseline distribution. Sequential
  /// (create -> launch_and_spawn -> kill -> destroy), so the 64-slot port
  /// block never binds the sample count.
  int baseline_samples = 32;
  /// Gate: attach p99 must be this many times below the baseline p99 at
  /// every point with >= 64 concurrent sessions.
  double speedup_gate = 10.0;

  static MuxAblationOptions smoke() {
    MuxAblationOptions o;
    o.nodes = 4;
    o.session_counts = {4, 16};
    o.arrival_intervals_ms = {0.5};
    o.baseline_samples = 4;
    return o;
  }
};

/// Per-session-bootstrap latency distribution (the ablated baseline).
struct MuxBaseline {
  int measured = 0;
  double p50_ms = -1.0;
  double p99_ms = -1.0;
  double max_ms = -1.0;
};

struct MuxAblationPoint {
  int sessions = 0;
  double arrival_interval_ms = 0.0;
  int attached = 0;  ///< virtual sessions that reached Ready
  int rejected = 0;  ///< admission rejects (gate: 0 - the bound is sized)
  double attach_p50_ms = -1.0;
  double attach_p99_ms = -1.0;
  double attach_max_ms = -1.0;
  double window_s = -1.0;  ///< first arrival -> last completion
  double throughput_sps = -1.0;  ///< attaches per simulated second
  double speedup_p99 = -1.0;     ///< baseline p99 / attach p99
};

struct MuxAblationReport {
  int nodes = 0;
  double speedup_gate = 0.0;
  std::vector<int> session_counts;
  std::vector<double> arrival_intervals_ms;
  MuxBaseline baseline;
  std::vector<MuxAblationPoint> points;
  /// Worst p99 speedup over the at-scale (>= 64 session) points; falls
  /// back to all points when the sweep never reaches that scale (smoke).
  double min_speedup_at_scale = -1.0;
  int total_rejected = 0;
  bool gate_met = false;
};

namespace mux_sweep {

inline double percentile(std::vector<double> v, double q) {
  if (v.empty()) return -1.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace mux_sweep

/// Measures the ablated baseline: every session bootstraps its own engine
/// + daemon tree. One seeded cluster per sample (the engine treats a
/// relaunch into a just-killed job as a launcher failure, and distinct
/// seeds give the cost jitter a real distribution to produce a p99 from).
inline MuxBaseline measure_mux_baseline(const MuxAblationOptions& opts) {
  MuxBaseline base;
  std::vector<double> lat;
  for (int k = 0; k < opts.baseline_samples; ++k) {
    TestCluster tc(opts.nodes, 0, cluster::CostModel{},
                   /*seed=*/1000 + static_cast<std::uint64_t>(k));
    std::shared_ptr<core::FrontEnd> fe;
    bool done = false;
    bool ok = false;
    sim::Time t0 = 0;
    tc.spawn_fe([&](cluster::Process& self) {
      fe = std::make_shared<core::FrontEnd>(self);
      (void)fe->init();
      auto sid = fe->create_session();
      if (!sid.is_ok()) {
        done = true;
        return;
      }
      core::FrontEnd::SpawnConfig cfg;
      cfg.daemon_exe = "hello_be";
      rm::JobSpec job{opts.nodes, 1, "mpi_app", {}};
      t0 = tc.simulator.now();
      fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
        ok = st.is_ok();
        done = true;
      });
    });
    if (!tc.run_until([&] { return done; })) continue;
    if (ok) lat.push_back(sim::to_ms(tc.simulator.now() - t0));
  }
  base.measured = static_cast<int>(lat.size());
  base.p50_ms = mux_sweep::percentile(lat, 0.50);
  base.p99_ms = mux_sweep::percentile(lat, 0.99);
  base.max_ms = lat.empty() ? -1.0 : *std::max_element(lat.begin(), lat.end());
  return base;
}

/// Measures one persistent-service point: one owner bootstrap (uncounted),
/// then `sessions` virtual attaches arriving every `interval_ms` onto the
/// shared tree, all staying attached (concurrent sessions, not churn).
inline MuxAblationPoint measure_mux_point(const MuxAblationOptions& opts,
                                          int sessions,
                                          double interval_ms) {
  MuxAblationPoint pt;
  pt.sessions = sessions;
  pt.arrival_interval_ms = interval_ms;

  TestCluster tc(opts.nodes, 0, cluster::CostModel{});
  std::shared_ptr<core::FrontEnd> fe;
  int owner = -1;
  bool owner_ready = false;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self, sessions + 4);
    (void)fe->init();
    owner = fe->create_session().value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    cfg.max_tree_sessions = static_cast<std::uint32_t>(sessions) + 1;
    rm::JobSpec job{opts.nodes, 1, "mpi_app", {}};
    fe->launch_and_spawn(owner, job, cfg,
                         [&](Status st) { owner_ready = st.is_ok(); });
  });
  if (!tc.run_until([&] { return owner_ready; })) return pt;

  // Arrival process: session i's attach request fires at first + i * dt.
  std::vector<double> lat;
  int completed = 0;
  const sim::Time dt = sim::ms(interval_ms);
  const sim::Time first = tc.simulator.now() + sim::ms(1);
  sim::Time last_done = first;
  for (int i = 0; i < sessions; ++i) {
    tc.simulator.schedule_at(first + static_cast<sim::Time>(i) * dt, [&] {
      auto sid = fe->create_session();
      if (!sid.is_ok()) {
        ++pt.rejected;
        ++completed;
        return;
      }
      core::FrontEnd::SpawnConfig cfg;
      cfg.attach_to = fe->infra_of(owner);
      const sim::Time t0 = tc.simulator.now();
      fe->launch_and_spawn(sid.value, rm::JobSpec{}, cfg, [&, t0](Status st) {
        if (st.is_ok()) {
          lat.push_back(sim::to_ms(tc.simulator.now() - t0));
          ++pt.attached;
        } else {
          ++pt.rejected;
        }
        last_done = tc.simulator.now();
        ++completed;
      });
    });
  }
  if (!tc.run_until([&] { return completed == sessions; },
                    sim::seconds(600))) {
    return pt;
  }
  pt.attach_p50_ms = mux_sweep::percentile(lat, 0.50);
  pt.attach_p99_ms = mux_sweep::percentile(lat, 0.99);
  pt.attach_max_ms =
      lat.empty() ? -1.0 : *std::max_element(lat.begin(), lat.end());
  pt.window_s = sim::to_seconds(last_done - first);
  if (pt.window_s > 0) {
    pt.throughput_sps = static_cast<double>(pt.attached) / pt.window_s;
  }
  return pt;
}

inline MuxAblationReport run_mux_ablation(const MuxAblationOptions& opts) {
  MuxAblationReport report;
  report.nodes = opts.nodes;
  report.speedup_gate = opts.speedup_gate;
  report.session_counts = opts.session_counts;
  report.arrival_intervals_ms = opts.arrival_intervals_ms;
  report.baseline = measure_mux_baseline(opts);

  for (const int s : opts.session_counts) {
    for (const double dt : opts.arrival_intervals_ms) {
      MuxAblationPoint pt = measure_mux_point(opts, s, dt);
      if (pt.attach_p99_ms > 0 && report.baseline.p99_ms > 0) {
        pt.speedup_p99 = report.baseline.p99_ms / pt.attach_p99_ms;
      }
      report.total_rejected += pt.rejected;
      report.points.push_back(std::move(pt));
    }
  }

  // Gate on the at-scale points (>= 64 concurrent sessions); a smoke sweep
  // that never reaches that scale gates on everything it ran.
  bool any_at_scale = false;
  for (const MuxAblationPoint& p : report.points) {
    if (p.sessions >= 64) any_at_scale = true;
  }
  for (const MuxAblationPoint& p : report.points) {
    if (any_at_scale && p.sessions < 64) continue;
    if (report.min_speedup_at_scale < 0 ||
        p.speedup_p99 < report.min_speedup_at_scale) {
      report.min_speedup_at_scale = p.speedup_p99;
    }
  }
  report.gate_met = report.min_speedup_at_scale >= opts.speedup_gate &&
                    report.total_rejected == 0;
  return report;
}

// --- JSON emission (deterministic key order; the emitter is the schema) ------

inline std::string to_json(const MuxAblationReport& r) {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"ablation_mux\",\n";
  out += "  \"deterministic\": true,\n";
  out += "  \"nodes\": " + std::to_string(r.nodes) + ",\n";
  out += "  \"speedup_gate\": " + jsonv::num(r.speedup_gate) + ",\n";
  out += "  \"session_counts\": [";
  for (std::size_t i = 0; i < r.session_counts.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(r.session_counts[i]);
  }
  out += "],\n";
  out += "  \"arrival_intervals_ms\": [";
  for (std::size_t i = 0; i < r.arrival_intervals_ms.size(); ++i) {
    if (i != 0) out += ", ";
    out += jsonv::num(r.arrival_intervals_ms[i]);
  }
  out += "],\n";
  out += "  \"baseline\": {\"measured\": " +
         std::to_string(r.baseline.measured) +
         ", \"p50_ms\": " + jsonv::num(r.baseline.p50_ms) +
         ", \"p99_ms\": " + jsonv::num(r.baseline.p99_ms) +
         ", \"max_ms\": " + jsonv::num(r.baseline.max_ms) + "},\n";
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const MuxAblationPoint& p = r.points[i];
    out += "    {\"sessions\": " + std::to_string(p.sessions) +
           ", \"arrival_interval_ms\": " + jsonv::num(p.arrival_interval_ms) +
           ", \"attached\": " + std::to_string(p.attached) +
           ", \"rejected\": " + std::to_string(p.rejected) +
           ", \"attach_p50_ms\": " + jsonv::num(p.attach_p50_ms) +
           ", \"attach_p99_ms\": " + jsonv::num(p.attach_p99_ms) +
           ", \"attach_max_ms\": " + jsonv::num(p.attach_max_ms) +
           ", \"window_s\": " + jsonv::num(p.window_s) +
           ", \"throughput_sps\": " + jsonv::num(p.throughput_sps) +
           ", \"speedup_p99\": " + jsonv::num(p.speedup_p99) + "}";
    if (i + 1 != r.points.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"min_speedup_at_scale\": " +
         jsonv::num(r.min_speedup_at_scale) + ",\n";
  out += "  \"total_rejected\": " + std::to_string(r.total_rejected) + ",\n";
  out += "  \"gate_met\": " + std::string(r.gate_met ? "true" : "false") +
         "\n";
  out += "}\n";
  return out;
}

}  // namespace lmon::bench
