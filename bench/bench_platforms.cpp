// bench_platforms - the paper's §4 BlueGene/L port observation:
//
// "Our experiments on that platform demonstrate that LaunchMON has similar
//  overheads on it. However, we found that the time for spawning the job
//  tasks and tool daemons (i.e., T(job) and T(daemon)) by mpirun, the RM on
//  that system, were significantly higher."
//
// Runs the instrumented launchAndSpawn on the Atlas-like and the
// BlueGene-like platform profiles and prints the region split: the RM
// regions differ strongly, LaunchMON's own costs do not - the portability
// payoff of the engine's platform-adaptation layer.
#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "core/fe_api.hpp"
#include "simkernel/stats.hpp"

namespace lmon {
namespace {

struct Split {
  bool ok = false;
  double total = 0;
  double rm_regions = 0;    // T(job) + T(daemon) + setup + collective
  double launchmon = 0;     // tracing + rpdtab + other
};

Split run_once(int ndaemons, const cluster::CostModel& costs) {
  bench::TestCluster tc(ndaemons, 0, costs);
  bench::ScopedTrace trace(tc);
  sim::Timeline timeline;
  sim::CostLedger ledger;
  tc.machine.set_timeline(&timeline);
  tc.machine.set_ledger(&ledger);

  bool done = false;
  Status status;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{ndaemons, 8, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      status = st;
      done = true;
    });
  });
  tc.run_until([&] { return done; }, sim::seconds(900));
  Split s;
  if (!done || !status.is_ok()) return s;
  s.ok = true;
  s.total = sim::to_seconds(timeline.between("e0_fe_call", "e11_return"));
  s.rm_regions =
      sim::to_seconds(timeline.between("t_job_begin", "t_job_end")) +
      sim::to_seconds(timeline.between("t_daemon_begin", "t_daemon_end")) +
      sim::to_seconds(
          timeline.between("be_e8_setup_begin", "be_e9_setup_done")) +
      sim::to_seconds(timeline.between("be_t_collective_begin",
                                       "be_t_collective_end"));
  s.launchmon = sim::to_seconds(ledger.total("tracing")) +
                sim::to_seconds(ledger.total("rpdtab_fetch")) +
                sim::to_seconds(ledger.total("other"));
  return s;
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (!bench::common_flag(arg)) {
      std::fprintf(stderr, "usage: %s [--trace-out=PATH]\n", argv[0]);
      return 2;
    }
  }
  bench::set_trace_out(args);
  bench::print_title(
      "Platform comparison (paper §4): Atlas-like vs BlueGene-like RM");
  std::printf("%8s | %26s | %26s\n", "", "Atlas-like (slurm)",
              "BlueGene-like (mpirun)");
  std::printf("%8s | %8s %8s %8s | %8s %8s %8s\n", "daemons", "total",
              "RM", "LMON", "total", "RM", "LMON");
  const cluster::CostModel atlas;
  const cluster::CostModel bgl = cluster::CostModel::bluegene_like();
  for (int n : bench::scales({16, 64, 128}, {16})) {
    const Split a = run_once(n, atlas);
    const Split b = run_once(n, bgl);
    if (!a.ok || !b.ok) {
      std::printf("%8d | FAIL\n", n);
      continue;
    }
    std::printf("%8d | %7.3fs %7.3fs %7.3fs | %7.3fs %7.3fs %7.3fs\n", n,
                a.total, a.rm_regions, a.launchmon, b.total, b.rm_regions,
                b.launchmon);
  }
  std::printf(
      "\nshape: the mpirun-like platform's RM regions (T(job)+T(daemon)+"
      "setup+collective) are several\ntimes Atlas's, while LaunchMON's own "
      "contribution is identical on both - 'similar overheads',\nas the "
      "paper reports for its BG/L port. (BG/L also runs no rshd: the ad "
      "hoc baseline does not\nexist there at all.)\n");
  return 0;
}
