// bench_ablation_rsh - ablation of the paper's launching strategies (§2/§4,
// Figure 4): the serial front-end rsh loop, the recursive tree-rsh
// protocol, and LaunchMON's RM-native bulk launch, every one driven through
// the same FE-API surface (comm::LaunchStrategy session option) and
// validated against its per-strategy analytic model (core::PerfModel).
//
// Expected shape: serial rsh is linear (~0.24 s/daemon) and collapses past
// the fork limit (the paper's consistent 512-node failure); the rsh tree
// amortizes depth but still pays k serialized sessions per level; the
// RM-native path beats both by an order of magnitude and stays ~flat.
//
// Flags:
//   --json           emit the machine-readable report (schema under golden
//                    test; see tests/integration/bench_schema_test.cpp)
//   --max-nodes=N    cap the sweep (default 1024; smoke runs use 16)
//   --tpn=T          MPI tasks per node for the traced job (default 1)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/ablation_rsh_lib.hpp"
#include "common/argparse.hpp"

namespace lmon {
namespace {

void print_table(const bench::RshAblationReport& report) {
  bench::print_title(
      "Ablation: launch strategies through comm::LaunchStrategy "
      "(model vs measured)");
  std::printf("%10s %9s %6s | %10s %10s %9s\n", "strategy", "fabric",
              "nodes", "measured", "model", "residual");
  for (const auto& p : report.points) {
    std::printf("%10s %9s %6d |", p.strategy.c_str(), p.topology.c_str(),
                p.nodes);
    if (!p.measured_ok) {
      std::printf(" %9s", "FAIL");
    } else {
      std::printf(" %9.2fs", p.measured_s);
    }
    if (p.model_predicts_failure) {
      std::printf(" %9s", "FAIL");
    } else {
      std::printf(" %9.2fs", p.model_s);
    }
    if (p.measured_ok && !p.model_predicts_failure) {
      std::printf(" %8.1f%%", p.residual_pct);
    } else if (!p.measured_ok && p.model_predicts_failure) {
      std::printf(" %9s", "agree");
    } else {
      std::printf(" %9s", "DISAGREE");
    }
    std::printf("\n");
  }
  std::printf(
      "\nmodel crossovers: tree-rsh overtakes serial-rsh at %d nodes; "
      "rm-bulk wins outright (serial at %d, tree at %d).\n",
      report.tree_over_serial, report.rm_over_serial, report.rm_over_tree);
  std::printf("max |model - measured| residual: %.1f%% (gate: 15%%)\n",
              report.max_abs_residual_pct);
  if (report.model_measured_disagreements != 0) {
    std::printf("model/measured FAIL disagreements: %d (gate: 0)\n",
                report.model_measured_disagreements);
  }
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (arg != "--json" && arg.rfind("--max-nodes=", 0) != 0 &&
        arg.rfind("--tpn=", 0) != 0 && !bench::common_flag(arg)) {
      std::fprintf(stderr,
                   "usage: %s [--json] [--max-nodes=N] [--tpn=T] "
                   "[--trace-out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  bench::set_trace_out(args);
  bench::RshAblationOptions opts;
  if (bench::smoke_mode()) opts.max_nodes = 16;
  const bool json = std::find(args.begin(), args.end(), "--json") !=
                    args.end();
  opts.max_nodes = static_cast<int>(
      arg_int(args, "--max-nodes=").value_or(opts.max_nodes));
  opts.tasks_per_node = static_cast<int>(
      arg_int(args, "--tpn=").value_or(opts.tasks_per_node));
  if (opts.max_nodes < 4 || opts.tasks_per_node < 1) {
    std::fprintf(stderr, "bad --max-nodes/--tpn\n");
    return 2;
  }

  const bench::RshAblationReport report = bench::run_rsh_ablation(opts);
  if (json) {
    std::fputs(bench::to_json(report).c_str(), stdout);
  } else {
    print_table(report);
  }
  // Gate: tight residuals on every comparable point, and model/measured
  // agreement about where launching fails outright.
  return (report.max_abs_residual_pct <= 15.0 &&
          report.model_measured_disagreements == 0)
             ? 0
             : 1;
}
