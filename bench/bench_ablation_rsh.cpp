// bench_ablation_rsh - ablation of the two ad hoc launching strategies the
// paper describes in §2: "Most implementations have the tool front end
// spawn each remote daemon sequentially; others employ a tree-based
// protocol allowing daemons that the tool front end launches to spawn
// children daemons".
//
// Serial cost is ~(session cost) x N; a k-ary rsh tree parallelizes
// subtrees but each agent still pays k serialized sessions per level, and
// both remain far slower than the RM-native launch (printed for reference).
#include <cstdio>
#include <memory>

#include "apps/test_programs.hpp"
#include "bench/bench_util.hpp"
#include "core/fe_api.hpp"
#include "rsh/launchers.hpp"

namespace lmon {
namespace {

/// FE program that forwards tree-agent reports to the launcher facade.
class RshBenchFe : public cluster::Program {
 public:
  using Go = std::function<void(cluster::Process&)>;
  explicit RshBenchFe(Go go) : go_(std::move(go)) {}
  [[nodiscard]] std::string_view name() const override { return "rsh_fe"; }
  void on_start(cluster::Process& self) override { go_(self); }
  void on_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                  cluster::Message msg) override {
    (void)rsh::TreeRshLauncher::handle_report(self, ch, msg);
  }

 private:
  Go go_;
};

double run_serial(int n) {
  bench::TestCluster tc(n);
  bool done = false;
  Status status;
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  std::vector<cluster::ChannelPtr> keep;

  std::vector<rsh::LaunchTarget> targets;
  for (int i = 0; i < n; ++i) {
    targets.push_back(
        rsh::LaunchTarget{tc.machine.compute_node(i).hostname(), "sleeperd",
                          {}});
  }
  cluster::SpawnOptions opts;
  opts.executable = "rsh_fe";
  auto res = tc.machine.front_end().spawn(
      std::make_unique<RshBenchFe>([&](cluster::Process& self) {
        t0 = self.sim().now();
        rsh::SerialRshLauncher::launch(
            self, targets, [&](rsh::LaunchOutcome out) {
              status = out.status;
              keep = std::move(out.sessions);
              t1 = self.sim().now();
              done = true;
            });
      }),
      std::move(opts));
  if (!res.is_ok()) return -1;
  tc.run_until([&] { return done; }, sim::seconds(3600));
  if (!done || !status.is_ok()) return -1.0;
  return sim::to_seconds(t1 - t0);
}

double run_tree(int n, int fanout) {
  bench::TestCluster tc(n);
  bool done = false;
  Status status;
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  std::size_t launched = 0;

  std::vector<std::string> hosts;
  for (int i = 0; i < n; ++i) {
    hosts.push_back(tc.machine.compute_node(i).hostname());
  }
  cluster::SpawnOptions opts;
  opts.executable = "rsh_fe";
  auto res = tc.machine.front_end().spawn(
      std::make_unique<RshBenchFe>([&](cluster::Process& self) {
        t0 = self.sim().now();
        rsh::TreeRshLauncher::launch(
            self, hosts, "sleeperd", {}, fanout,
            [&](rsh::LaunchOutcome out) {
              status = out.status;
              launched = out.daemons.size();
              t1 = self.sim().now();
              done = true;
            });
      }),
      std::move(opts));
  if (!res.is_ok()) return -1;
  tc.run_until([&] { return done; }, sim::seconds(3600));
  if (!done || !status.is_ok() || launched != static_cast<std::size_t>(n)) {
    return -1.0;
  }
  return sim::to_seconds(t1 - t0);
}

double run_rm(int n) {
  bench::TestCluster tc(n);
  bool done = false;
  Status status;
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{n, 1, "mpi_app", {}};
    t0 = self.sim().now();
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      status = st;
      t1 = self.sim().now();
      done = true;
    });
  });
  tc.run_until([&] { return done; }, sim::seconds(900));
  if (!done || !status.is_ok()) return -1.0;
  return sim::to_seconds(t1 - t0);
}

void print_cell(double secs) {
  if (secs < 0) {
    std::printf(" %9s", "FAIL");
  } else {
    std::printf(" %8.2fs", secs);
  }
}

}  // namespace
}  // namespace lmon

int main() {
  using namespace lmon;
  bench::print_title("Ablation: ad hoc rsh strategies vs RM-native launch");
  std::printf("%8s | %9s %9s %9s %9s | %9s\n", "daemons", "serial",
              "tree k=2", "tree k=8", "tree k=32", "LaunchMON");
  for (int n : {4, 16, 64, 128, 256}) {
    std::printf("%8d |", n);
    print_cell(run_serial(n));
    print_cell(run_tree(n, 2));
    print_cell(run_tree(n, 8));
    print_cell(run_tree(n, 32));
    std::printf(" |");
    print_cell(run_rm(n));
    std::printf("\n");
  }
  std::printf(
      "\nshape: serial rsh is linear (~0.24 s/daemon); rsh trees amortize "
      "depth but still pay k sessions\nper level; the RM-native LaunchMON "
      "path beats both by an order of magnitude and scales flattest.\n");
  return 0;
}
