// ablation_heal_lib.hpp - the self-healing availability sweep shared by
// bench_ablation_heal and the bench-schema golden test.
//
// The paper's tree of comm daemons is a single point of failure at every
// interior node; the fabric now heals (see "Self-healing trees" in
// docs/ARCHITECTURE.md). This sweep quantifies that: for each fabric
// topology and each correlated-failure magnitude (a fraction of the
// non-root ranks dying at once, spread across the tree), it scripts the
// deaths through tests/fault_plan.hpp, measures time-to-recovery (last
// kill until every survivor is reparented onto a live ancestor and
// heal-idle), then drives a full broadcast + gather over the healed tree
// and counts lost or duplicated payloads. The bench gates on: every point
// recovers inside the recovery budget, zero lost payloads, zero duplicate
// deliveries, zero give-ups.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/ablation_rsh_lib.hpp"  // jsonv helpers + json_shape
#include "bench/bench_util.hpp"
#include "comm/bootstrap.hpp"
#include "comm/topology.hpp"
#include "core/iccl.hpp"
#include "obs/metrics.hpp"
#include "tests/fault_plan.hpp"

namespace lmon::bench {

struct HealAblationOptions {
  int nodes = 16;
  /// Fractions of the non-root ranks killed simultaneously per point.
  std::vector<double> kill_fractions = {0.0625, 0.125, 0.25};
  std::vector<comm::TopologySpec> topologies = {
      {comm::TopologyKind::KAry, 2},
      {comm::TopologyKind::KAry, 4},
      {comm::TopologyKind::Binomial, 0},
      {comm::TopologyKind::Flat, 0}};
  std::size_t payload_bytes = 4096;
  /// Recovery budget per point (simulated seconds from last kill to a
  /// fully reparented, heal-idle fabric).
  double recovery_gate_s = 5.0;

  static HealAblationOptions smoke() {
    HealAblationOptions o;
    o.nodes = 8;
    o.kill_fractions = {0.125, 0.25};
    o.topologies = {{comm::TopologyKind::KAry, 2},
                    {comm::TopologyKind::Flat, 0}};
    return o;
  }
};

struct HealAblationPoint {
  std::string topology;
  double kill_fraction = 0.0;
  int killed = 0;
  int survivors = 0;
  bool recovered = false;    ///< settled inside the run_until budget
  double recovery_s = -1.0;  ///< last kill -> settled (-1: never)
  double reattaches = 0.0;   ///< iccl.heal.reattaches
  double adoptions = 0.0;    ///< iccl.heal.adoptions
  double give_ups = 0.0;     ///< iccl.heal.give_ups
  int lost_payloads = 0;     ///< post-heal deliveries missing or corrupt
  int duplicate_deliveries = 0;
};

struct HealAblationReport {
  int nodes = 0;
  std::size_t payload_bytes = 0;
  double recovery_gate_s = 0.0;
  std::vector<std::string> topologies;
  std::vector<double> kill_fractions;
  std::vector<HealAblationPoint> points;
  double max_recovery_s = 0.0;
  int total_lost_payloads = 0;
  int total_duplicates = 0;
  double total_give_ups = 0.0;
  bool all_recovered = false;
};

namespace heal_sweep {

/// Shared observation state for one availability session (kept outside the
/// TestCluster so zombie Programs can still deregister at teardown).
struct SweepShared {
  std::map<std::uint32_t, std::map<std::uint32_t, int>> bcast_count;
  std::map<std::uint32_t, std::map<std::uint32_t, Bytes>> bcast_by_tag;
  std::map<std::uint32_t, int> gather_fired;
  std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, Bytes>>>
      gather_by_tag;
  std::map<std::uint32_t, core::Iccl*> iccls;  ///< live instances only
  int ready = 0;
};

class SweepDaemon : public cluster::Program {
 public:
  explicit SweepDaemon(SweepShared* sh) : sh_(sh) {}
  ~SweepDaemon() override {
    if (rank_ != kNoRank) sh_->iccls.erase(rank_);
  }
  [[nodiscard]] std::string_view name() const override { return "heal_be"; }

  void on_start(cluster::Process& self) override {
    auto params =
        core::Iccl::params_from_args(self.args(), self.node().hostname());
    if (!params.has_value()) return;
    iccl_ = std::make_unique<core::Iccl>(self, std::move(*params));
    rank_ = iccl_->rank();
    const std::uint32_t rank = rank_;
    iccl_->set_bcast_handler(
        [this, rank](std::uint32_t tag, const Bytes& data) {
          sh_->bcast_count[rank][tag] += 1;
          sh_->bcast_by_tag[rank][tag] = data;
        });
    iccl_->set_gather_handler(
        [this](std::uint32_t tag,
               std::vector<std::pair<std::uint32_t, Bytes>> entries) {
          sh_->gather_fired[tag] += 1;
          sh_->gather_by_tag[tag] = std::move(entries);
        });
    sh_->iccls[rank] = iccl_.get();
    iccl_->start([this](Status st) {
      if (st.is_ok()) sh_->ready += 1;
    });
  }

 private:
  static constexpr std::uint32_t kNoRank = 0xffffffffu;
  SweepShared* sh_;
  std::uint32_t rank_ = kNoRank;
  std::unique_ptr<core::Iccl> iccl_;
};

inline Bytes patterned(std::size_t size, std::uint8_t salt) {
  Bytes b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 31) ^ salt);
  }
  return b;
}

/// Victims spread across ranks 1..n-1 at an even stride, so a given
/// fraction hits every depth of the tree instead of one rack.
inline std::vector<std::uint32_t> pick_victims(int n, int killed) {
  std::vector<std::uint32_t> out;
  const int pool = n - 1;  // rank 0 (the root) never dies here
  const double stride = static_cast<double>(pool) / killed;
  for (int i = 0; i < killed; ++i) {
    auto r = 1 + static_cast<std::uint32_t>(std::floor(i * stride));
    if (!out.empty() && r <= out.back()) r = out.back() + 1;
    if (r > static_cast<std::uint32_t>(pool)) break;
    out.push_back(r);
  }
  return out;
}

inline bool fabric_settled(const TestCluster& tc, const SweepShared& sh,
                           const lmon::testing::FaultPlan& plan,
                           const std::set<std::uint32_t>& alive) {
  if (tc.simulator.now() <= plan.last_kill()) return false;
  for (const std::uint32_t r : alive) {
    auto it = sh.iccls.find(r);
    if (it == sh.iccls.end() || !it->second->heal_idle()) return false;
    if (r == 0) continue;
    const std::uint32_t parent = it->second->parent_rank();
    auto pit = sh.iccls.find(parent);
    if (alive.count(parent) == 0 || pit == sh.iccls.end()) return false;
    const auto kids = pit->second->live_children();
    if (std::find(kids.begin(), kids.end(), r) == kids.end()) return false;
  }
  return true;
}

}  // namespace heal_sweep

/// Runs one availability session: wire, baseline round, correlated kill,
/// time the heal, then verify a full broadcast + gather over the survivors.
inline HealAblationPoint measure_heal_point(const comm::TopologySpec& topo,
                                            int nodes, int killed,
                                            double fraction,
                                            std::size_t payload_bytes) {
  using lmon::testing::FaultPlan;
  HealAblationPoint pt;
  pt.topology = topo.to_string();
  pt.kill_fraction = fraction;
  pt.killed = killed;
  pt.survivors = nodes - killed;

  heal_sweep::SweepShared sh;  // must outlive the cluster (zombie dtors)
  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  TestCluster tc(nodes, 0, costs);
  obs::Metrics metrics;
  tc.machine.set_metrics(&metrics);

  comm::BootstrapSpec spec;
  spec.size = static_cast<std::uint32_t>(nodes);
  spec.topology = topo;
  spec.port = cluster::kToolFabricBasePort;
  spec.session = "heal-bench";
  spec.heal = true;
  for (int i = 0; i < nodes; ++i) {
    spec.hosts.push_back(tc.machine.compute_node(i).hostname());
  }
  std::vector<cluster::Pid> pids;
  for (std::uint32_t r = 0; r < spec.size; ++r) {
    cluster::SpawnOptions opts;
    opts.executable = "heal_be";
    opts.args = comm::bootstrap_args(spec, r);
    auto res = tc.machine.compute_node(static_cast<int>(r))
                   .spawn(std::make_unique<heal_sweep::SweepDaemon>(&sh),
                          std::move(opts));
    if (!res.is_ok()) return pt;
    pids.push_back(res.value);
  }
  if (!tc.run_until([&] { return sh.ready == nodes; })) return pt;

  // Baseline round proves the fabric before any failure.
  const Bytes baseline = heal_sweep::patterned(payload_bytes, 0x11);
  sh.iccls[0]->broadcast(1, baseline);
  if (!tc.run_until([&] {
        for (std::uint32_t r = 0; r < spec.size; ++r) {
          if (sh.bcast_by_tag[r].count(1) == 0) return false;
        }
        return true;
      })) {
    return pt;
  }

  // Correlated kill: `killed` ranks die in the same simulated instant.
  const auto victims = heal_sweep::pick_victims(nodes, killed);
  const FaultPlan plan =
      FaultPlan::correlated(tc.simulator.now() + sim::ms(10), victims);
  plan.arm(tc.machine, pids);
  std::set<std::uint32_t> alive;
  for (std::uint32_t r = 0; r < spec.size; ++r) alive.insert(r);
  for (const std::uint32_t d : plan.dead_ranks()) alive.erase(d);

  pt.recovered = tc.run_until(
      [&] { return heal_sweep::fabric_settled(tc, sh, plan, alive); },
      sim::seconds(600));
  if (!pt.recovered) return pt;
  pt.recovery_s = sim::to_seconds(tc.simulator.now() - plan.last_kill());
  pt.reattaches = metrics.counter("iccl.heal.reattaches");
  pt.adoptions = metrics.counter("iccl.heal.adoptions");
  pt.give_ups = metrics.counter("iccl.heal.give_ups");

  // Post-heal broadcast: exactly-once, byte-identical at every survivor.
  const Bytes probe = heal_sweep::patterned(payload_bytes, 0x77);
  sh.iccls[0]->broadcast(2, probe);
  tc.run_until([&] {
    for (const std::uint32_t r : alive) {
      if (sh.bcast_by_tag[r].count(2) == 0) return false;
    }
    return true;
  });
  for (const std::uint32_t r : alive) {
    if (sh.bcast_by_tag[r].count(2) == 0 || sh.bcast_by_tag[r][2] != probe) {
      pt.lost_payloads += 1;
    } else if (sh.bcast_count[r][2] != 1) {
      pt.duplicate_deliveries += sh.bcast_count[r][2] - 1;
    }
  }

  // Post-heal gather: the root assembles exactly the survivor set.
  constexpr std::uint32_t kGatherTag = 3;
  for (const std::uint32_t r : alive) {
    sh.iccls[r]->contribute(
        kGatherTag,
        heal_sweep::patterned(64 + r, static_cast<std::uint8_t>(r)));
  }
  tc.run_until([&] { return sh.gather_fired[kGatherTag] != 0; });
  if (sh.gather_fired[kGatherTag] == 0) {
    pt.lost_payloads += static_cast<int>(alive.size());
  } else {
    pt.duplicate_deliveries += sh.gather_fired[kGatherTag] - 1;
    std::set<std::uint32_t> seen;
    for (const auto& [origin, data] : sh.gather_by_tag[kGatherTag]) {
      if (!seen.insert(origin).second) {
        pt.duplicate_deliveries += 1;
        continue;
      }
      if (alive.count(origin) == 0 ||
          data != heal_sweep::patterned(64 + origin,
                                        static_cast<std::uint8_t>(origin))) {
        pt.lost_payloads += 1;
      }
    }
    for (const std::uint32_t r : alive) {
      if (seen.count(r) == 0) pt.lost_payloads += 1;
    }
  }
  return pt;
}

inline HealAblationReport run_heal_ablation(const HealAblationOptions& opts) {
  HealAblationReport report;
  report.nodes = opts.nodes;
  report.payload_bytes = opts.payload_bytes;
  report.recovery_gate_s = opts.recovery_gate_s;
  report.kill_fractions = opts.kill_fractions;
  report.all_recovered = true;
  for (const auto& topo : opts.topologies) {
    report.topologies.push_back(topo.to_string());
    for (const double f : opts.kill_fractions) {
      const int killed = std::max(
          1, static_cast<int>(std::lround(f * (opts.nodes - 1))));
      HealAblationPoint pt = measure_heal_point(topo, opts.nodes, killed, f,
                                                opts.payload_bytes);
      report.all_recovered = report.all_recovered && pt.recovered;
      if (pt.recovered) {
        report.max_recovery_s = std::max(report.max_recovery_s,
                                         pt.recovery_s);
      }
      report.total_lost_payloads += pt.lost_payloads;
      report.total_duplicates += pt.duplicate_deliveries;
      report.total_give_ups += pt.give_ups;
      report.points.push_back(std::move(pt));
    }
  }
  return report;
}

// --- JSON emission (deterministic key order; the emitter is the schema) ------

inline std::string to_json(const HealAblationReport& r) {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"ablation_heal\",\n";
  out += "  \"deterministic\": true,\n";
  out += "  \"nodes\": " + std::to_string(r.nodes) + ",\n";
  out += "  \"payload_bytes\": " + std::to_string(r.payload_bytes) + ",\n";
  out += "  \"recovery_gate_s\": " + jsonv::num(r.recovery_gate_s) + ",\n";
  out += "  \"topologies\": [";
  for (std::size_t i = 0; i < r.topologies.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + r.topologies[i] + "\"";
  }
  out += "],\n";
  out += "  \"kill_fractions\": [";
  for (std::size_t i = 0; i < r.kill_fractions.size(); ++i) {
    if (i != 0) out += ", ";
    out += jsonv::num(r.kill_fractions[i]);
  }
  out += "],\n";
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const HealAblationPoint& p = r.points[i];
    out += "    {\"topology\": \"" + p.topology +
           "\", \"kill_fraction\": " + jsonv::num(p.kill_fraction) +
           ", \"killed\": " + std::to_string(p.killed) +
           ", \"survivors\": " + std::to_string(p.survivors) +
           ", \"recovered\": " + (p.recovered ? "true" : "false") +
           ", \"recovery_s\": " + jsonv::num(p.recovery_s) +
           ", \"reattaches\": " + jsonv::num(p.reattaches) +
           ", \"adoptions\": " + jsonv::num(p.adoptions) +
           ", \"give_ups\": " + jsonv::num(p.give_ups) +
           ", \"lost_payloads\": " + std::to_string(p.lost_payloads) +
           ", \"duplicate_deliveries\": " +
           std::to_string(p.duplicate_deliveries) + "}";
    if (i + 1 != r.points.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"max_recovery_s\": " + jsonv::num(r.max_recovery_s) + ",\n";
  out += "  \"total_lost_payloads\": " +
         std::to_string(r.total_lost_payloads) + ",\n";
  out += "  \"total_duplicates\": " + std::to_string(r.total_duplicates) +
         ",\n";
  out += "  \"total_give_ups\": " + jsonv::num(r.total_give_ups) + ",\n";
  out += "  \"all_recovered\": " +
         std::string(r.all_recovered ? "true" : "false") + "\n";
  out += "}\n";
  return out;
}

}  // namespace lmon::bench
