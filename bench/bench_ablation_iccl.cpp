// bench_ablation_iccl - the ICCL eager/rendezvous broadcast ablation:
// fleet-wide broadcast latency (master issue to last delivery) swept over
// payload size x fabric topology x protocol, validated point-by-point
// against core::PerfModel::collective_bcast() and crossover-by-crossover
// against collective_crossover() (the analytic answer to "where should the
// rendezvous threshold sit for this fabric").
//
// Expected shape: eager wins small payloads (no RTS/CTS round trip), but
// its per-child payload copies serialize at every parent and whole-payload
// store-and-forward stacks per level; rendezvous pays the handshake once
// and then streams zero-copy chunks that relays forward cut-through, so it
// wins from a payload the model pins per topology (deep trees cross over
// earlier than flat fan-out).
//
// Flags:
//   --json        machine-readable report (schema under golden test; see
//                 tests/integration/bench_schema_test.cpp)
//   --nodes=N     daemons per session (default 32; smoke uses 8)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/ablation_iccl_lib.hpp"
#include "common/argparse.hpp"

namespace lmon {
namespace {

void print_table(const bench::IcclAblationReport& report) {
  bench::print_title(
      "Ablation: ICCL broadcast eager vs rendezvous (model vs measured)");
  std::printf("%10s %11s %10s | %11s %11s %9s\n", "topology", "protocol",
              "payload", "measured", "model", "residual");
  for (const auto& p : report.points) {
    std::printf("%10s %11s %9zuK |", p.topology.c_str(), p.protocol.c_str(),
                p.payload_bytes / 1024);
    if (!p.measured_ok) {
      std::printf(" %10s", "FAIL");
    } else {
      std::printf(" %9.4fs", p.measured_s);
    }
    std::printf(" %10.4fs", p.model_s);
    if (p.measured_ok) {
      std::printf(" %8.1f%%", p.residual_pct);
    } else {
      std::printf(" %9s", "-");
    }
    std::printf("\n");
  }
  std::printf("\ncrossovers (eager -> rendezvous payload):\n");
  for (const auto& c : report.crossovers) {
    std::printf("  %10s  measured %8.0f B  model %8.0f B  (%+.1f%%)%s\n",
                c.topology.c_str(), c.measured_bytes, c.model_bytes,
                c.agreement_pct,
                c.rendezvous_wins_at_max ? "" : "  [rndv never wins!]");
  }
  std::printf(
      "\nscatter (model only - would a rendezvous scatter ever pay off?):\n");
  for (const auto& c : report.scatter_crossovers) {
    if (c.model_bytes > 0) {
      std::printf("  %10s  rndv wins from %8.0f B\n", c.topology.c_str(),
                  c.model_bytes);
    } else {
      std::printf("  %10s  eager wins at every swept payload\n",
                  c.topology.c_str());
    }
  }
  std::printf("  verdict: rendezvous scatter %s\n",
              report.rendezvous_scatter_ever_wins
                  ? "would win somewhere on this sweep"
                  : "never wins on this sweep - not worth implementing");
  std::printf(
      "\nmax |model - measured| residual: %.1f%% (gate: 15%%); max crossover "
      "disagreement: %.1f%% (gate: 15%%)\n",
      report.max_abs_residual_pct, report.max_abs_crossover_pct);
  std::printf(
      "shape: eager pays (msg-handle + payload-copy) per child per level and "
      "full store-and-forward\nper hop; rendezvous pays RTS/CTS once, then "
      "zero-copy chunks pipeline across levels. Deep\ntrees cross over at "
      "smaller payloads than flat fan-out.\n");
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (arg != "--json" && arg.rfind("--nodes=", 0) != 0 &&
        !bench::common_flag(arg)) {
      std::fprintf(stderr, "usage: %s [--json] [--nodes=N] [--trace-out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  bench::set_trace_out(args);
  bench::IcclAblationOptions opts;
  if (bench::smoke_mode()) opts = bench::IcclAblationOptions::smoke();
  opts.nodes =
      static_cast<int>(arg_int(args, "--nodes=").value_or(opts.nodes));
  if (opts.nodes < 2) {
    std::fprintf(stderr, "bad --nodes\n");
    return 2;
  }
  const bool json =
      std::find(args.begin(), args.end(), "--json") != args.end();

  const bench::IcclAblationReport report = bench::run_iccl_ablation(opts);
  if (json) {
    std::fputs(bench::to_json(report).c_str(), stdout);
  } else {
    print_table(report);
  }
  // Gate: tight residuals on every measured point, model/measured agreement
  // on the crossover payload, and the headline claim - rendezvous beats
  // eager at the largest swept payload on every topology.
  return (report.max_abs_residual_pct <= 15.0 &&
          report.max_abs_crossover_pct <= 15.0 &&
          report.rendezvous_wins_at_max_everywhere &&
          report.measurement_failures == 0)
             ? 0
             : 1;
}
