// bench_ablation_iccl - ICCL collective latency across daemon counts,
// fabric fan-outs and tree families: the cost of the minimal services
// (§3.3) tools reuse after startup. Latency is measured fleet-wide: from
// the last rank's entry into the collective to the last rank's completion.
//
// Usage: bench_ablation_iccl [--topo=kary|all]  (default kary: degree sweep)
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "bench/bench_util.hpp"
#include "common/argparse.hpp"
#include "comm/topology.hpp"
#include "core/be_api.hpp"
#include "core/fe_api.hpp"

namespace lmon {
namespace {

struct CollState {
  std::map<std::uint32_t, sim::Time> barrier_enter;
  std::map<std::uint32_t, sim::Time> barrier_done;
  std::map<std::uint32_t, sim::Time> gather_enter;
  sim::Time gather_done = 0;
  int finished = 0;
};

class TimedCollDaemon : public cluster::Program {
 public:
  explicit TimedCollDaemon(CollState* state) : state_(state) {}
  [[nodiscard]] std::string_view name() const override { return "timed_be"; }

  void on_start(cluster::Process& self) override {
    be_ = std::make_unique<core::BackEnd>(self);
    core::BackEnd::Callbacks cbs;
    cbs.on_init = [](const core::Rpdtab&, const Bytes&,
                     std::function<void(Status)> done) { done(Status::ok()); };
    cbs.on_ready = [this, &self](Status st) {
      if (!st.is_ok()) return;
      // Warm-up barrier aligns all ranks, then the measured collectives.
      be_->barrier([this, &self] {
        state_->barrier_enter[be_->rank()] = self.sim().now();
        be_->barrier([this, &self] {
          state_->barrier_done[be_->rank()] = self.sim().now();
          state_->gather_enter[be_->rank()] = self.sim().now();
          be_->gather(Bytes(1024, 0x11), [this, &self](auto entries) {
            (void)entries;
            state_->gather_done = self.sim().now();
          });
          state_->finished += 1;
        });
      });
    };
    (void)be_->init(std::move(cbs));
  }

  static void install(cluster::Machine& machine, CollState* state) {
    cluster::ProgramImage image;
    image.image_mb = 2.0;
    image.factory = [state](const std::vector<std::string>&) {
      return std::make_unique<TimedCollDaemon>(state);
    };
    machine.install_program("timed_be", std::move(image));
  }

 private:
  CollState* state_;
  std::unique_ptr<core::BackEnd> be_;
};

sim::Time max_value(const std::map<std::uint32_t, sim::Time>& m) {
  sim::Time v = 0;
  for (const auto& [rank, t] : m) v = std::max(v, t);
  return v;
}

struct Times {
  double barrier = -1;
  double gather = -1;
};

Times run_once(int ndaemons, comm::TopologySpec topo) {
  bench::TestCluster tc(ndaemons);
  CollState state;
  TimedCollDaemon::install(tc.machine, &state);
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "timed_be";
    cfg.topology = topo;
    rm::JobSpec job{ndaemons, 1, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [](Status) {});
  });
  Times t;
  const bool ok = tc.run_until(
      [&] {
        return state.finished == ndaemons && state.gather_done != 0;
      },
      sim::seconds(900));
  if (!ok) return t;
  t.barrier =
      sim::to_seconds(max_value(state.barrier_done) -
                      max_value(state.barrier_enter));
  t.gather = sim::to_seconds(state.gather_done -
                             max_value(state.gather_enter));
  return t;
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string mode = arg_value(args, "--topo=").value_or("kary");

  std::vector<comm::TopologySpec> shapes;
  if (mode == "all") {
    shapes = {{comm::TopologyKind::KAry, 2},
              {comm::TopologyKind::KAry, 32},
              {comm::TopologyKind::Binomial, 0},
              {comm::TopologyKind::Flat, 0}};
  } else if (mode == "kary") {
    shapes = {{comm::TopologyKind::KAry, 2},
              {comm::TopologyKind::KAry, 8},
              {comm::TopologyKind::KAry, 32}};
  } else if (const auto spec = comm::TopologySpec::parse(mode)) {
    shapes = {*spec};
  } else {
    std::fprintf(stderr,
                 "usage: bench_ablation_iccl "
                 "[--topo=kary|binomial|flat|kary:K|all]\n");
    return 2;
  }

  bench::print_title(
      "Ablation: ICCL collective latency (last-entry to last-completion)");
  std::printf("%8s %12s | %12s %16s\n", "daemons", "topology", "barrier",
              "gather 1KiB/dmn");
  for (int n : bench::scales({16, 64, 256, 1024}, {16})) {
    for (const auto& s : shapes) {
      const Times t = run_once(n, s);
      if (t.barrier < 0) {
        std::printf("%8d %12s | FAIL\n", n, s.to_string().c_str());
        continue;
      }
      std::printf("%8d %12s | %11.4fs %15.4fs\n", n, s.to_string().c_str(),
                  t.barrier, t.gather);
    }
  }
  std::printf(
      "\nshape: latency ~ depth x per-level cost; higher fan-out flattens "
      "the tree until per-parent\nserialization dominates. Gather exceeds "
      "barrier because payload bytes accumulate toward the root.\nThe "
      "binomial tree sits near the tuned k-ary optimum; flat pays root "
      "serialization at scale.\n");
  return 0;
}
