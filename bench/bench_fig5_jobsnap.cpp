// bench_fig5_jobsnap - reproduces paper Figure 5: "Jobsnap Performance".
//
// Total jobsnap time and the time inside LaunchMON's init->attachAndSpawn,
// as daemon count scales (8 MPI tasks per daemon, up to 1024 daemons /
// 8192 tasks).
//
// Paper anchors: well under 1.5 s total through 512 daemons (4096 tasks);
// 2.92 s total / 2.76 s in LaunchMON functionality at 1024 daemons (8192
// tasks) - the super-linear last doubling attributed to "sub-optimal
// scaling characteristics of the RM functionality at this scale".
//
// Flags:
//   --json              emit the machine-readable report (schema under
//                       golden test; tests/integration/bench_schema_test.cpp)
//   --trace-out=<path>  export a Chrome/Perfetto trace of the last swept
//                       point (also via LMON_TRACE_OUT)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/fig5_jobsnap_lib.hpp"

namespace lmon {
namespace {

void print_table(const bench::JobsnapReport& report) {
  bench::print_title("Figure 5: Jobsnap performance (8 MPI tasks/daemon)");
  std::printf("%8s %6s | %16s %22s\n", "daemons", "tasks", "jobsnap total",
              "init->attachAndSpawn");
  for (const auto& pt : report.points) {
    if (!pt.ok) {
      std::printf("%8d %6d | FAILED\n", pt.daemons, pt.tasks);
      continue;
    }
    std::printf("%8d %6d | %14.3fs %20.3fs\n", pt.daemons, pt.tasks,
                pt.total_s, pt.init_to_spawn_s);
  }
  std::printf(
      "\npaper anchors: <1.5 s total at 512 daemons/4096 tasks; 2.92 s total "
      "(2.76 s in LaunchMON)\nat 1024 daemons/8192 tasks, with the last "
      "doubling super-linear due to the RM term.\n");
  bench::print_gather_table(report.gather);
}

}  // namespace
}  // namespace lmon

int main(int argc, char** argv) {
  using namespace lmon;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (arg != "--json" && !bench::common_flag(arg)) {
      std::fprintf(stderr, "usage: %s [--json] [--trace-out=PATH]\n", argv[0]);
      return 2;
    }
  }
  bench::set_trace_out(args);
  const bool json =
      std::find(args.begin(), args.end(), "--json") != args.end();

  const bench::JobsnapOptions opts = bench::smoke_mode()
                                         ? bench::JobsnapOptions::smoke()
                                         : bench::JobsnapOptions{};
  const bench::JobsnapReport report = bench::run_jobsnap_sweep(opts);
  if (json) {
    std::fputs(bench::to_json(report).c_str(), stdout);
  } else {
    print_table(report);
  }
  // Gate: every swept jobsnap point succeeded, and the upstream gather
  // sweep holds its residual / rendezvous-wins-at-max claims.
  const bool points_ok = std::all_of(report.points.begin(),
                                     report.points.end(),
                                     [](const auto& p) { return p.ok; });
  return (points_ok && report.gather.gate_ok()) ? 0 : 1;
}
