// bench_fig5_jobsnap - reproduces paper Figure 5: "Jobsnap Performance".
//
// Total jobsnap time and the time inside LaunchMON's init->attachAndSpawn,
// as daemon count scales (8 MPI tasks per daemon, up to 1024 daemons /
// 8192 tasks).
//
// Paper anchors: well under 1.5 s total through 512 daemons (4096 tasks);
// 2.92 s total / 2.76 s in LaunchMON functionality at 1024 daemons (8192
// tasks) - the super-linear last doubling attributed to "sub-optimal
// scaling characteristics of the RM functionality at this scale".
#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "tools/jobsnap/jobsnap_be.hpp"
#include "tools/jobsnap/jobsnap_fe.hpp"

namespace lmon {
namespace {

struct Point {
  bool ok = false;
  double total = 0;
  double init_to_spawn = 0;
};

Point run_once(int ndaemons, int tpn) {
  bench::TestCluster tc(ndaemons);
  tools::jobsnap::JobsnapBe::install(tc.machine);
  Point pt;
  const cluster::Pid launcher = bench::start_plain_job(tc, ndaemons, tpn);
  if (launcher == cluster::kInvalidPid) return pt;

  tools::jobsnap::JobsnapOutcome out;
  cluster::SpawnOptions opts;
  opts.executable = "jobsnap_fe";
  opts.image_mb = 3.0;
  auto res = tc.machine.front_end().spawn(
      std::make_unique<tools::jobsnap::JobsnapFe>(launcher, &out),
      std::move(opts));
  if (!res.is_ok()) return pt;
  tc.run_until([&] { return out.done; }, sim::seconds(900));
  if (!out.done || !out.status.is_ok()) return pt;

  pt.ok = true;
  pt.total = sim::to_seconds(out.t_done - out.t_start);
  pt.init_to_spawn = sim::to_seconds(out.t_spawned - out.t_start);
  return pt;
}

}  // namespace
}  // namespace lmon

int main() {
  using namespace lmon;
  bench::print_title("Figure 5: Jobsnap performance (8 MPI tasks/daemon)");
  std::printf("%8s %6s | %16s %22s\n", "daemons", "tasks", "jobsnap total",
              "init->attachAndSpawn");
  const int tpn = 8;
  for (int n : bench::scales({16, 32, 64, 128, 256, 384, 512, 768, 1024}, {16, 32})) {
    const Point pt = run_once(n, tpn);
    if (!pt.ok) {
      std::printf("%8d %6d | FAILED\n", n, n * tpn);
      continue;
    }
    std::printf("%8d %6d | %14.3fs %20.3fs\n", n, n * tpn, pt.total,
                pt.init_to_spawn);
  }
  std::printf(
      "\npaper anchors: <1.5 s total at 512 daemons/4096 tasks; 2.92 s total "
      "(2.76 s in LaunchMON)\nat 1024 daemons/8192 tasks, with the last "
      "doubling super-linear due to the RM term.\n");
  return 0;
}
